package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"regexp"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/psi"
	"repro/internal/smartpsi"
)

// taggedFake records the fingerprint the server threads through
// EvaluateTagged, on top of fakeEval's scriptable behavior.
type taggedFake struct {
	fakeEval
	lastFingerprint string
	lastRequestID   string
}

func (f *taggedFake) EvaluateTagged(q graph.Query, deadline time.Time, requestID, fingerprint string) (*smartpsi.Result, error) {
	f.mu.Lock()
	f.lastFingerprint = fingerprint
	f.lastRequestID = requestID
	f.mu.Unlock()
	return f.EvaluateBudget(q, deadline)
}

var fingerprintRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestServerWorkloadObservation: an armed server fingerprints each
// query at admission, threads the key through the tagged evaluator and
// the access ring, folds outcomes into the sketch (repeat exact hits
// included), and serves the result at /queryz.
func TestServerWorkloadObservation(t *testing.T) {
	w := obs.NewWorkload(8)
	fake := &taggedFake{}
	_, ts := newTestServer(t, fake, Config{Workload: w})

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}

	d := w.Snapshot()
	if len(d.Shapes) != 1 {
		t.Fatalf("tracked shapes = %d, want 1 (same query twice)", len(d.Shapes))
	}
	top := d.Shapes[0]
	if top.Count != 2 || top.Totals.OK != 2 {
		t.Errorf("top shape count/ok = %d/%d, want 2/2", top.Count, top.Totals.OK)
	}
	if top.Totals.RepeatHits != 1 {
		t.Errorf("repeat hits = %d, want 1 (identical pivoted query repeated)", top.Totals.RepeatHits)
	}
	if top.Nodes != 3 || top.Edges != 3 {
		t.Errorf("shape dims = %d nodes %d edges, want the triangle's 3/3", top.Nodes, top.Edges)
	}

	fake.mu.Lock()
	fp, reqID := fake.lastFingerprint, fake.lastRequestID
	fake.mu.Unlock()
	if !fingerprintRE.MatchString(fp) {
		t.Fatalf("evaluator got fingerprint %q, want 16 hex digits", fp)
	}
	if fp != top.Fingerprint {
		t.Errorf("evaluator fingerprint %s != sketch fingerprint %s", fp, top.Fingerprint)
	}
	if reqID == "" {
		t.Error("tagged evaluator lost the request ID")
	}

	// The access ring's most recent /v1/psi entry carries the same key.
	var found bool
	for _, e := range obs.DefaultAccess.Entries() {
		if e.Path == "/v1/psi" && e.Fingerprint == fp {
			found = true
		}
	}
	if !found {
		t.Errorf("no access-ring entry carries fingerprint %s", fp)
	}

	// /queryz is mounted on the serving mux and agrees with the sketch.
	resp, err := ts.Client().Get(ts.URL + "/queryz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.WorkloadData
	decErr := json.NewDecoder(resp.Body).Decode(&doc)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("/queryz?format=json = %d, %v", resp.StatusCode, decErr)
	}
	if len(doc.Shapes) != 1 || doc.Shapes[0].Fingerprint != fp {
		t.Errorf("/queryz shapes = %+v, want fingerprint %s", doc.Shapes, fp)
	}
}

// TestServerWorkloadUnarmed: with no sketch the serving path stays
// fingerprint-free — the evaluator sees an empty fingerprint and
// /queryz answers 503.
func TestServerWorkloadUnarmed(t *testing.T) {
	fake := &taggedFake{lastFingerprint: "sentinel"}
	_, ts := newTestServer(t, fake, Config{})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	fake.mu.Lock()
	fp := fake.lastFingerprint
	fake.mu.Unlock()
	if fp != "sentinel" {
		t.Errorf("unarmed server still called EvaluateTagged (fingerprint %q)", fp)
	}
	r, err := ts.Client().Get(ts.URL + "/queryz")
	if err != nil {
		t.Fatal(err)
	}
	if cerr := r.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/queryz unarmed = %d, want 503", r.StatusCode)
	}
}

// TestServerWorkloadErrorOutcome: a panicking evaluation is folded into
// the sketch as an error for its shape.
func TestServerWorkloadErrorOutcome(t *testing.T) {
	w := obs.NewWorkload(8)
	fake := &fakeEval{panicOn: true}
	_, ts := newTestServer(t, fake, Config{Workload: w})
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	d := w.Snapshot()
	if len(d.Shapes) != 1 || d.Shapes[0].Totals.Errors != 1 {
		t.Fatalf("error outcome not folded: %+v", d.Shapes)
	}
}

// TestWorkloadOutcomeMapping pins the error -> outcome taxonomy,
// including the "client gone, observe nothing" case.
func TestWorkloadOutcomeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want string
		ok   bool
	}{
		{nil, obs.WorkloadOutcomeOK, true},
		{errShed, obs.WorkloadOutcomeShed, true},
		{context.DeadlineExceeded, obs.WorkloadOutcomeDeadline, true},
		{psi.ErrDeadline, obs.WorkloadOutcomeDeadline, true},
		{context.Canceled, "", false},
		{errors.New("boom"), obs.WorkloadOutcomeError, true},
	}
	for _, tc := range cases {
		got, ok := workloadOutcome(tc.err)
		if got != tc.want || ok != tc.ok {
			t.Errorf("workloadOutcome(%v) = %q/%v, want %q/%v", tc.err, got, ok, tc.want, tc.ok)
		}
	}
}
