package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/smartpsi"
)

// QueryJSON is the wire form of a pivoted query graph. Node IDs are the
// indices into Nodes; Edges entries are [src, dst] or [src, dst, label]
// pairs/triples (undirected, deduplicated by the builder); Pivot names
// the node whose bindings the query asks for.
type QueryJSON struct {
	// Nodes holds one label per query node; the node's ID is its index.
	Nodes []int64 `json:"nodes"`
	// Edges holds [src, dst] or [src, dst, label] entries.
	Edges [][]int64 `json:"edges"`
	// Pivot is the pivot node ID (an index into Nodes).
	Pivot int64 `json:"pivot"`
}

// PSIRequest is the body of POST /v1/psi. Exactly one of Query and
// QueryLG must be set.
type PSIRequest struct {
	// Query is the structured query form.
	Query *QueryJSON `json:"query,omitempty"`
	// QueryLG is the same query in LG text format ("v <id> <label>",
	// "e <src> <dst> [<label>]", "p <pivot>") — what cmd/psi-query and
	// the workload files use.
	QueryLG string `json:"query_lg,omitempty"`
	// TimeoutMS bounds the whole request (admission wait + evaluation);
	// 0 means the server's default, values above the server's maximum
	// are clamped. Negative values are rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryResult is the success body of POST /v1/psi and the per-item
// payload of a batch response.
type QueryResult struct {
	// Bindings are the distinct data-graph nodes binding the pivot,
	// ascending.
	Bindings []int64 `json:"bindings"`
	// Candidates is the number of label-matching nodes examined.
	Candidates int `json:"candidates"`
	// UsedML reports whether the candidate set was large enough to train
	// the per-query models (false: pessimistic-heuristic fallback).
	UsedML bool `json:"used_ml"`
	// CacheHits / Flips / Fallbacks / Recursions surface the decision
	// telemetry of one evaluation (see DESIGN.md §5b for the mapping to
	// paper concepts).
	CacheHits  int64 `json:"cache_hits"`
	Flips      int64 `json:"flips"`
	Fallbacks  int64 `json:"fallbacks"`
	Recursions int64 `json:"recursions"`
	// ElapsedMS is the server-side evaluation wall time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Partial reports a degraded scatter-gather answer: at least one
	// shard's contribution is missing, so Bindings may be a strict
	// subset of the exact answer. Unsharded serving never sets it.
	Partial bool `json:"partial,omitempty"`
	// Shards carries the per-shard outcomes of a scattered evaluation
	// (sharded serving only).
	Shards []ShardOutcomeJSON `json:"shards,omitempty"`
}

// ShardOutcomeJSON is one shard's contribution to a scattered query.
type ShardOutcomeJSON struct {
	Shard     int     `json:"shard"`
	Bindings  int     `json:"bindings"`
	ElapsedMS float64 `json:"elapsed_ms"`
	TimedOut  bool    `json:"timed_out,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// BatchRequest is the body of POST /v1/psi/batch: up to MaxBatch
// structured queries scheduled across the worker pool under one shared
// deadline.
type BatchRequest struct {
	Queries   []QueryJSON `json:"queries"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
}

// BatchItem is one query's outcome inside a batch response. Status
// carries the HTTP status the query would have received standalone
// (200, 429, 500, 504); Result is set on 200, Error otherwise.
type BatchItem struct {
	Status int          `json:"status"`
	Result *QueryResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/psi/batch. The HTTP status is
// 200 whenever the batch itself was accepted; per-query failures are
// reported item by item (multi-status semantics).
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	Succeeded int         `json:"succeeded"`
	Failed    int         `json:"failed"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}

// httpError is an error carrying the HTTP status it should produce.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeJSON decodes r's body into v, mapping size and syntax problems
// to 400/413 httpErrors. The body is already wrapped by MaxBytesReader.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest("invalid JSON body: %v", err)
	}
	// Trailing garbage after the document is a malformed request too.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// buildQuery converts one wire query into a validated graph.Query,
// enforcing the server's size cap. All failures are 4xx httpErrors.
func (s *Server) buildQuery(qj *QueryJSON, lg string) (graph.Query, error) {
	var q graph.Query
	switch {
	case qj != nil && lg != "":
		return q, badRequest("set exactly one of query and query_lg, not both")
	case qj == nil && lg == "":
		return q, badRequest("missing query: set query (structured) or query_lg (LG text)")
	case qj != nil:
		var err error
		q, err = queryFromJSON(qj)
		if err != nil {
			return q, err
		}
	default:
		parsed, err := graph.ParseQueryLG(strings.NewReader(lg))
		if err != nil {
			return q, badRequest("query_lg: %v", err)
		}
		q = parsed
	}
	if n := q.G.NumNodes(); n > s.cfg.MaxQueryNodes {
		return q, &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("query has %d nodes, server cap is %d", n, s.cfg.MaxQueryNodes)}
	}
	if err := q.Validate(); err != nil {
		return q, badRequest("invalid query: %v", err)
	}
	// Reject label alphabets the data graph cannot satisfy up front:
	// the engine would error anyway, and here it is a client error.
	if g := s.dataGraph(); g != nil && q.G.NumLabels() > g.NumLabels() {
		return q, badRequest("query uses %d labels, data graph only has %d",
			q.G.NumLabels(), g.NumLabels())
	}
	return q, nil
}

// QueryToJSON projects a validated graph.Query into the wire form —
// the inverse of the request decoder, used by cmd/psi-loadgen and the
// test suite to ship workload-extracted queries to a server.
func QueryToJSON(q graph.Query) QueryJSON {
	qj := QueryJSON{Pivot: int64(q.Pivot)}
	labeled := q.G.HasEdgeLabels()
	for u := graph.NodeID(0); int(u) < q.G.NumNodes(); u++ {
		qj.Nodes = append(qj.Nodes, int64(q.G.Label(u)))
		for i, v := range q.G.Neighbors(u) {
			if u >= v {
				continue
			}
			if labeled {
				if l := q.G.EdgeLabelAt(u, i); l != graph.NoLabel {
					qj.Edges = append(qj.Edges, []int64{int64(u), int64(v), int64(l)})
					continue
				}
			}
			qj.Edges = append(qj.Edges, []int64{int64(u), int64(v)})
		}
	}
	return qj
}

// queryFromJSON builds a graph.Query from the structured wire form.
func queryFromJSON(qj *QueryJSON) (graph.Query, error) {
	var q graph.Query
	n := len(qj.Nodes)
	if n == 0 {
		return q, badRequest("query.nodes is empty")
	}
	b := graph.NewBuilder(n, len(qj.Edges))
	for i, l := range qj.Nodes {
		if l < 0 {
			return q, badRequest("query.nodes[%d]: negative label %d", i, l)
		}
		b.AddNode(graph.Label(l))
	}
	for i, e := range qj.Edges {
		if len(e) != 2 && len(e) != 3 {
			return q, badRequest("query.edges[%d]: want [src,dst] or [src,dst,label], got %d elements", i, len(e))
		}
		src, dst := e[0], e[1]
		if src < 0 || src >= int64(n) || dst < 0 || dst >= int64(n) {
			return q, badRequest("query.edges[%d]: endpoint out of range [0,%d)", i, n)
		}
		label := graph.NoLabel
		if len(e) == 3 {
			if e[2] < 0 {
				return q, badRequest("query.edges[%d]: negative edge label %d", i, e[2])
			}
			label = graph.Label(e[2])
		}
		if err := b.AddLabeledEdge(graph.NodeID(src), graph.NodeID(dst), label); err != nil {
			return q, badRequest("query.edges[%d]: %v", i, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return q, badRequest("query graph: %v", err)
	}
	if qj.Pivot < 0 || qj.Pivot >= int64(n) {
		return q, badRequest("query.pivot %d out of range [0,%d)", qj.Pivot, n)
	}
	q, err = graph.NewQuery(g, graph.NodeID(qj.Pivot))
	if err != nil {
		return q, badRequest("query: %v", err)
	}
	return q, nil
}

// resultJSON projects an engine result into the wire form.
func resultJSON(res *smartpsi.Result, elapsed time.Duration) *QueryResult {
	bindings := make([]int64, len(res.Bindings))
	for i, u := range res.Bindings {
		bindings[i] = int64(u)
	}
	return &QueryResult{
		Bindings:   bindings,
		Candidates: res.Candidates,
		UsedML:     res.UsedML,
		CacheHits:  res.CacheHits,
		Flips:      res.Flips,
		Fallbacks:  res.Fallbacks,
		Recursions: res.Work.Recursions,
		ElapsedMS:  float64(elapsed.Nanoseconds()) / 1e6,
	}
}

// attachGather folds a scatter-gather's degradation detail onto a wire
// result.
func attachGather(qr *QueryResult, gth *shard.Gather) *QueryResult {
	qr.Partial = gth.Partial
	for _, o := range gth.Outcomes {
		qr.Shards = append(qr.Shards, ShardOutcomeJSON{
			Shard:     o.Shard,
			Bindings:  o.Bindings,
			ElapsedMS: float64(o.Elapsed.Nanoseconds()) / 1e6,
			TimedOut:  o.TimedOut,
			Error:     o.Err,
		})
	}
	return qr
}

// writeJSON writes v with the given status. Encode errors mean the
// client went away; there is nothing useful to do with them.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}
