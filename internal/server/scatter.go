package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/smartpsi"
)

// Coordinator scatters queries across a fleet of psi-serve shard nodes
// over the normal HTTP wire format and gathers their owned bindings.
// It is an ordinary server evaluator — `psi-serve -coordinator
// -shard-addrs a,b,c` mounts it behind the same admission, metrics and
// drain machinery a single-engine server uses — plus the scatter
// extension, so responses carry the partial flag and per-shard
// outcomes, and a background prober feeds per-shard health into
// /readyz. The address list's order is the shard-index order: addrs[i]
// must be the node started with -shard-index i.
type Coordinator struct {
	addrs   []string
	client  *http.Client
	radius  int
	metrics []*obs.PerShard

	mu     sync.Mutex
	health []shard.Status

	probeEvery time.Duration
	stop       chan struct{}
	done       chan struct{}
}

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Addrs are the shard node base addresses in shard-index order
	// (host:port or full http:// URLs).
	Addrs []string
	// QueryRadius must match the fleet's -query-radius (default
	// shard.DefaultQueryRadius); the coordinator rejects deeper queries
	// up front, exactly as the nodes themselves would.
	QueryRadius int
	// ProbeInterval is the /readyz health-probe period. Default 2s.
	ProbeInterval time.Duration
	// Client overrides the HTTP client (tests). Default: a plain client;
	// per-request deadlines come from the request contexts.
	Client *http.Client
}

// NewCoordinator validates the address list and starts the health
// prober. Call Close to stop it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("server: coordinator needs at least one shard address")
	}
	c := &Coordinator{
		client:     cfg.Client,
		radius:     cfg.QueryRadius,
		probeEvery: cfg.ProbeInterval,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.radius <= 0 {
		c.radius = shard.DefaultQueryRadius
	}
	if c.probeEvery <= 0 {
		c.probeEvery = 2 * time.Second
	}
	for i, a := range cfg.Addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("server: shard address %d is empty", i)
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		c.addrs = append(c.addrs, strings.TrimRight(a, "/"))
		c.metrics = append(c.metrics, obs.ShardMetrics(i))
	}
	c.health = make([]shard.Status, len(c.addrs))
	for i := range c.health {
		c.health[i] = shard.Status{Index: i, Addr: c.addrs[i], Err: "not probed yet"}
	}
	obs.ShardCount.Set(int64(len(c.addrs)))
	//lint:ignore gojoin probeLoop closes c.done on exit and Close blocks on it; the join is cross-function
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
		<-c.done
	}
}

// ShardStatuses returns the prober's latest per-shard health rows.
func (c *Coordinator) ShardStatuses() []shard.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]shard.Status, len(c.health))
	copy(out, c.health)
	return out
}

// probeLoop polls every shard's /readyz, immediately once at startup
// and then on the configured period.
func (c *Coordinator) probeLoop() {
	defer close(c.done)
	c.probeAll()
	t := time.NewTicker(c.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := c.probeOne(i)
			c.mu.Lock()
			c.health[i] = st
			c.mu.Unlock()
		}(i)
	}
	wg.Wait()
}

// probeOne fetches one shard's /readyz. A ready shard node reports its
// own slice row (owned/halo node counts), which the coordinator adopts.
func (c *Coordinator) probeOne(i int) shard.Status {
	st := shard.Status{Index: i, Addr: c.addrs[i]}
	req, err := http.NewRequest(http.MethodGet, c.addrs[i]+"/readyz", nil)
	if err != nil {
		st.Err = err.Error()
		return st
	}
	resp, err := c.client.Do(req)
	if err != nil {
		st.Err = err.Error()
		return st
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		st.Err = fmt.Sprintf("readyz status %d", resp.StatusCode)
		return st
	}
	var ready struct {
		Shards []shard.Status `json:"shards"`
	}
	if err := json.Unmarshal(body, &ready); err == nil && len(ready.Shards) == 1 {
		st.OwnedNodes = ready.Shards[0].OwnedNodes
		st.HaloNodes = ready.Shards[0].HaloNodes
	}
	st.Healthy = true
	return st
}

// EvaluateBudget satisfies the plain Evaluator interface.
func (c *Coordinator) EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error) {
	g, err := c.EvaluateScatter(q, deadline, "", "")
	if err != nil {
		return nil, err
	}
	return g.Res, nil
}

// EvaluateScatter POSTs the query to every shard node concurrently and
// merges the answers under the shared shard.Merge degradation
// semantics.
func (c *Coordinator) EvaluateScatter(q graph.Query, deadline time.Time, requestID, fingerprint string) (*shard.Gather, error) {
	if err := shard.CheckRadius(q, c.radius); err != nil {
		return nil, err
	}
	start := time.Now()
	obs.ShardScatters.Inc()
	shardDeadline := shard.SliceDeadline(deadline)
	outcomes := make([]shard.Outcome, len(c.addrs))
	results := make([]*smartpsi.Result, len(c.addrs))
	qj := QueryToJSON(q)
	var wg sync.WaitGroup
	for i := range c.addrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.metrics[i].Queries.Inc()
			t0 := time.Now()
			res, o := c.callShard(i, qj, shardDeadline, requestID)
			o.Shard = i
			o.Elapsed = time.Since(t0)
			c.metrics[i].Seconds.ObserveSeconds(o.Elapsed.Seconds())
			switch {
			case o.TimedOut:
				c.metrics[i].Timeouts.Inc()
			case o.Err != "":
				c.metrics[i].Errors.Inc()
			default:
				o.Bindings = len(res.Bindings)
				results[i] = res
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	return shard.Merge(outcomes, results, start)
}

// callShard runs one sub-query against shard i and classifies the
// outcome: 200 -> answered, 504 -> timed out, anything else (transport
// errors included) -> errored.
func (c *Coordinator) callShard(i int, qj QueryJSON, deadline time.Time, requestID string) (*smartpsi.Result, shard.Outcome) {
	var o shard.Outcome
	body := PSIRequest{Query: &qj}
	if !deadline.IsZero() {
		ms := time.Until(deadline).Milliseconds()
		if ms < 1 {
			o.TimedOut = true
			return nil, o
		}
		body.TimeoutMS = ms
	}
	buf, err := json.Marshal(body)
	if err != nil {
		o.Err = err.Error()
		return nil, o
	}
	req, err := http.NewRequest(http.MethodPost, c.addrs[i]+"/v1/psi", bytes.NewReader(buf))
	if err != nil {
		o.Err = err.Error()
		return nil, o
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		// Forward the coordinator's request ID so one scattered query
		// correlates across every shard's log, trace and profile.
		req.Header.Set(requestIDHeader, requestID)
	}
	if !deadline.IsZero() {
		// The wire timeout stops the shard's evaluation; the request
		// context (with grace) stops waiting for a wedged node.
		ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(250*time.Millisecond))
		defer cancel()
		req = req.WithContext(ctx)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if isDeadlineErr(err) {
			o.TimedOut = true
		} else {
			o.Err = err.Error()
		}
		return nil, o
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		o.Err = err.Error()
		return nil, o
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGatewayTimeout:
		o.TimedOut = true
		return nil, o
	default:
		o.Err = fmt.Sprintf("status %d: %s", resp.StatusCode, errorMessage(raw))
		return nil, o
	}
	var qr QueryResult
	if err := json.Unmarshal(raw, &qr); err != nil {
		o.Err = fmt.Sprintf("bad shard response: %v", err)
		return nil, o
	}
	return resultFromJSON(&qr), o
}

// resultFromJSON lifts a shard node's wire result back into engine-
// result form for the shared merge. Only the merged/served fields
// survive the round trip; per-shard profiles stay on their own nodes
// (reachable there by the forwarded request ID).
func resultFromJSON(qr *QueryResult) *smartpsi.Result {
	res := &smartpsi.Result{
		Candidates: qr.Candidates,
		UsedML:     qr.UsedML,
		CacheHits:  qr.CacheHits,
		Flips:      qr.Flips,
		Fallbacks:  qr.Fallbacks,
	}
	res.Work.Recursions = qr.Recursions
	res.Bindings = make([]graph.NodeID, len(qr.Bindings))
	for i, u := range qr.Bindings {
		res.Bindings[i] = graph.NodeID(u)
	}
	return res
}

// errorMessage extracts the error string from a JSON error body, or
// returns a truncated raw body.
func errorMessage(raw []byte) string {
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err == nil && eb.Error != "" {
		return eb.Error
	}
	s := strings.TrimSpace(string(raw))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// isDeadlineErr reports whether a transport error is a timeout.
func isDeadlineErr(err error) bool {
	if err == nil {
		return false
	}
	if t, ok := err.(interface{ Timeout() bool }); ok && t.Timeout() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
