package server

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/smartpsi"
	"repro/internal/workload"
)

// fakeScatterEval scripts the scatter extension for handler tests.
type fakeScatterEval struct {
	gather *shard.Gather
	err    error
}

func (f *fakeScatterEval) EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error) {
	g, err := f.EvaluateScatter(q, deadline, "", "")
	if err != nil {
		return nil, err
	}
	return g.Res, nil
}

func (f *fakeScatterEval) EvaluateScatter(q graph.Query, deadline time.Time, requestID, fingerprint string) (*shard.Gather, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.gather, nil
}

func (f *fakeScatterEval) ShardStatuses() []shard.Status {
	return []shard.Status{{Index: 0, Healthy: true}, {Index: 1, Healthy: false, Err: "connection refused"}}
}

// A partial gather must surface on the wire (partial flag, per-shard
// outcomes) and burn server_partial_total.
func TestServerPartialResponse(t *testing.T) {
	fake := &fakeScatterEval{gather: &shard.Gather{
		Res:     &smartpsi.Result{Bindings: []graph.NodeID{4, 9}, Candidates: 7},
		Partial: true,
		Outcomes: []shard.Outcome{
			{Shard: 0, Bindings: 2, Elapsed: 3 * time.Millisecond},
			{Shard: 1, Err: "connection refused"},
		},
	}}
	_, ts := newTestServer(t, fake, Config{})
	before := obs.ServerPartials.Value()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResult
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial {
		t.Fatal("partial gather served without the partial flag")
	}
	if len(qr.Shards) != 2 || qr.Shards[1].Error == "" || qr.Shards[0].Bindings != 2 {
		t.Fatalf("shard outcomes on the wire: %+v", qr.Shards)
	}
	if len(qr.Bindings) != 2 {
		t.Fatalf("bindings: %v", qr.Bindings)
	}
	if obs.ServerPartials.Value() != before+1 {
		t.Fatal("server_partial_total did not count the partial answer")
	}
}

// /readyz surfaces the evaluator's per-shard health rows.
func TestServerReadyzShardHealth(t *testing.T) {
	fake := &fakeScatterEval{gather: &shard.Gather{Res: &smartpsi.Result{}}}
	_, ts := newTestServer(t, fake, Config{})
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Status        string         `json:"status"`
		Shards        []shard.Status `json:"shards"`
		ShardsHealthy int            `json:"shards_healthy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || len(ready.Shards) != 2 || ready.ShardsHealthy != 1 {
		t.Fatalf("readyz = %+v", ready)
	}
	if ready.Shards[1].Healthy || ready.Shards[1].Err == "" {
		t.Fatalf("unhealthy shard row lost: %+v", ready.Shards[1])
	}
}

// A query too deep for the shard halo is a 400, not a silent subset.
func TestServerRadiusRejected(t *testing.T) {
	fake := &fakeScatterEval{err: &shard.RadiusError{Eccentricity: 5, Radius: 3}}
	_, ts := newTestServer(t, fake, Config{})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

// startFleet boots n shard-node servers over g and a coordinator server
// scattering to them, returning the coordinator's base URL and the
// per-node test servers.
func startFleet(t *testing.T, g *graph.Graph, n int, cfg Config) (*httptest.Server, []*httptest.Server, *Coordinator) {
	t.Helper()
	nodes := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := shard.NewNode(g, shard.Options{Strategy: shard.LabelHash, Engine: smartpsi.Options{Threads: 1}}, n, i)
		if err != nil {
			t.Fatalf("NewNode(%d): %v", i, err)
		}
		ns := NewServer(node, Config{})
		nodes[i] = httptest.NewServer(ns.Handler())
		t.Cleanup(nodes[i].Close)
		addrs[i] = nodes[i].URL
	}
	coord, err := NewCoordinator(CoordinatorConfig{Addrs: addrs, ProbeInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cs := NewServer(coord, cfg)
	ts := httptest.NewServer(cs.Handler())
	t.Cleanup(ts.Close)
	return ts, nodes, coord
}

// End-to-end fleet equivalence: a coordinator over two HTTP shard nodes
// answers exactly what the model-free reference computes, and losing a
// node degrades to flagged partial answers plus an unhealthy /readyz
// row.
func TestCoordinatorFleet(t *testing.T) {
	g := graphtest.Random(120, 360, 4, 51)
	ref, err := NewReference(g)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := workload.ExtractQueries(g, 4, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	ts, nodes, coord := startFleet(t, g, 2, Config{})

	for i, q := range qs {
		want, err := ref.Bindings(q)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi",
			PSIRequest{Query: ptrQueryJSON(QueryToJSON(q)), TimeoutMS: 10000})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
		var qr QueryResult
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Partial {
			t.Fatalf("query %d: healthy fleet served a partial answer", i)
		}
		if len(qr.Shards) != 2 {
			t.Fatalf("query %d: %d shard outcomes", i, len(qr.Shards))
		}
		if !int64SlicesEqual(qr.Bindings, want) {
			t.Fatalf("query %d: fleet %v, reference %v", i, qr.Bindings, want)
		}
	}

	// Kill shard 1 and require a flagged partial answer.
	nodes[1].Close()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi",
		PSIRequest{Query: ptrQueryJSON(QueryToJSON(qs[0])), TimeoutMS: 10000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded fleet: status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResult
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial {
		t.Fatalf("lost shard did not flag the answer partial: %s", body)
	}
	full, err := ref.Bindings(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Bindings) > len(full) {
		t.Fatalf("partial answer larger than the exact one: %d > %d", len(qr.Bindings), len(full))
	}

	// The prober must notice the loss.
	waitUntil(t, "prober to mark shard 1 unhealthy", func() bool {
		sts := coord.ShardStatuses()
		return len(sts) == 2 && sts[0].Healthy && !sts[1].Healthy
	})
}

// All shards lost is a hard error on the wire, not an empty 200.
func TestCoordinatorAllShardsDown(t *testing.T) {
	g := graphtest.Random(60, 150, 3, 57)
	qs, err := workload.ExtractQueries(g, 3, 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ts, nodes, _ := startFleet(t, g, 2, Config{})
	nodes[0].Close()
	nodes[1].Close()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi",
		PSIRequest{Query: ptrQueryJSON(QueryToJSON(qs[0])), TimeoutMS: 5000})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("all shards down: status %d: %s", resp.StatusCode, body)
	}
}

func TestCoordinatorConfigValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{}); err == nil {
		t.Fatal("coordinator with no shard addresses accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Addrs: []string{"127.0.0.1:1", " "}}); err == nil {
		t.Fatal("blank shard address accepted")
	}
	var re *shard.RadiusError
	c, err := NewCoordinator(CoordinatorConfig{Addrs: []string{"127.0.0.1:1"}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A deep query is rejected before any network call.
	b := graph.NewBuilder(6, 5)
	for i := 0; i < 6; i++ {
		b.AddNode(0)
	}
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.EvaluateScatter(graph.Query{G: b.MustBuild(), Pivot: 0}, time.Time{}, "", ""); !errors.As(err, &re) {
		t.Fatalf("deep query: %v", err)
	}
}

func ptrQueryJSON(qj QueryJSON) *QueryJSON { return &qj }

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
