package server

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/psi"
	"repro/internal/signature"
)

// Reference is a model-free cross-checking evaluator: plain pessimistic
// PSI under the heuristic plan, no training, no cache, no preemption.
// The serving tests and psi-loadgen's -verify mode compare served
// bindings against it — SmartPSI's models only change how fast an
// answer arrives, never what the answer is.
//
// Construction builds the data-graph signatures once; Bindings is then
// safe for concurrent use.
type Reference struct {
	g    *graph.Graph
	sigs *signature.Signatures
}

// NewReference builds a reference evaluator over g (one signature
// construction, the same startup cost an Engine pays).
func NewReference(g *graph.Graph) (*Reference, error) {
	sigs, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix)
	if err != nil {
		return nil, fmt.Errorf("server: reference signatures: %w", err)
	}
	return &Reference{g: g, sigs: sigs}, nil
}

// Bindings evaluates q with the pessimistic-only strategy and returns
// the pivot bindings in the wire form (ascending int64 IDs).
func (r *Reference) Bindings(q graph.Query) ([]int64, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("server: reference query: %w", err)
	}
	qSigs, err := signature.Build(q.G, r.sigs.Depth(), r.sigs.Width(), signature.Matrix)
	if err != nil {
		return nil, fmt.Errorf("server: reference query signatures: %w", err)
	}
	ev, err := psi.NewEvaluator(r.g, q, r.sigs, qSigs)
	if err != nil {
		return nil, fmt.Errorf("server: reference evaluator: %w", err)
	}
	res, err := psi.EvaluateAll(ev, psi.PessimisticOnly, time.Time{})
	if err != nil {
		return nil, fmt.Errorf("server: reference evaluation: %w", err)
	}
	out := make([]int64, len(res.Bindings))
	for i, u := range res.Bindings {
		out[i] = int64(u)
	}
	return out, nil
}

// referenceBindings is the one-shot form used by the test suite.
func referenceBindings(g *graph.Graph, q graph.Query) ([]int64, error) {
	ref, err := NewReference(g)
	if err != nil {
		return nil, err
	}
	return ref.Bindings(q)
}
