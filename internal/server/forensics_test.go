package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestServerPprofGate pins the serving-listener exposure policy: pprof
// answers 403 by default and mounts only with ExposePprof (the
// -expose-pprof flag); the rest of the debug surface is unaffected.
func TestServerPprofGate(t *testing.T) {
	_, closed := newTestServer(t, &fakeEval{}, Config{})
	resp, err := closed.Client().Get(closed.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("/debug/pprof/ default = %d, want 403", resp.StatusCode)
	}
	if !strings.Contains(string(body), "expose-pprof") {
		t.Errorf("gate message does not name the flag:\n%s", body)
	}

	_, open := newTestServer(t, &fakeEval{}, Config{ExposePprof: true})
	resp, err = open.Client().Get(open.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ with ExposePprof = %d, want 200", resp.StatusCode)
	}
}

// TestServerBundleMounted checks /debugz/bundle serves a readable
// bundle when a Bundler is configured and 503 when not.
func TestServerBundleMounted(t *testing.T) {
	_, bare := newTestServer(t, &fakeEval{}, Config{})
	resp, err := bare.Client().Get(bare.URL + "/debugz/bundle")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/debugz/bundle without bundler = %d, want 503", resp.StatusCode)
	}

	b, err := obs.NewBundler(obs.BundlerConfig{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, &fakeEval{}, Config{Bundler: b})
	resp, err = ts.Client().Get(ts.URL + "/debugz/bundle")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debugz/bundle = %d", resp.StatusCode)
	}
	a, err := obs.ReadBundle(data)
	if err != nil {
		t.Fatalf("served bundle does not read back: %v", err)
	}
	if a.Manifest.Reason != obs.BundleReasonManual {
		t.Errorf("reason = %q, want manual", a.Manifest.Reason)
	}
}

// TestServerAccessRing checks /v1 requests land in the shared access
// ring with their request ID, status and path — the access.jsonl view
// diagnostic bundles correlate against.
func TestServerAccessRing(t *testing.T) {
	_, ts := newTestServer(t, &fakeEval{}, Config{})
	const reqID = "access-ring-test-7"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/psi",
		strings.NewReader(`{"query":{"nodes":[0,1,0],"edges":[[0,1],[1,2],[0,2]],"pivot":0}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/psi = %d", resp.StatusCode)
	}

	var found bool
	for _, e := range obs.DefaultAccess.Entries() {
		if e.RequestID == reqID {
			found = true
			if e.Path != "/v1/psi" || e.Status != http.StatusOK || e.Method != http.MethodPost {
				t.Errorf("access entry = %+v, want POST /v1/psi 200", e)
			}
			if e.DurationMS < 0 {
				t.Errorf("access entry duration = %v, want >= 0", e.DurationMS)
			}
		}
	}
	if !found {
		t.Fatalf("request %s not in the access ring (%d entries)", reqID, obs.DefaultAccess.Len())
	}

	// Non-/v1 traffic stays out of the ring.
	before := obs.DefaultAccess.Len()
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hresp.Body.Close()
	if after := obs.DefaultAccess.Len(); after != before {
		t.Errorf("access ring grew %d -> %d on /healthz; only /v1 belongs there", before, after)
	}
}
