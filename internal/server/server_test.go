package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/psi"
	"repro/internal/smartpsi"
)

// fakeEval is a scriptable Evaluator for guardrail tests: it can block
// until released, honor deadlines, or panic, all without wall-clock
// sleeps in the assertions.
type fakeEval struct {
	mu      sync.Mutex
	calls   int
	block   chan struct{} // when non-nil, evaluation waits here (or for the deadline)
	panicOn bool
	result  *smartpsi.Result
}

func (f *fakeEval) snapshotCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeEval) EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error) {
	f.mu.Lock()
	f.calls++
	block, panics, res := f.block, f.panicOn, f.result
	f.mu.Unlock()
	if panics {
		panic("fakeEval: scripted panic")
	}
	if block != nil {
		if deadline.IsZero() {
			<-block
		} else {
			timer := time.NewTimer(time.Until(deadline))
			defer timer.Stop()
			select {
			case <-block:
			case <-timer.C:
				return nil, psi.ErrDeadline
			}
		}
	}
	if res != nil {
		return res, nil
	}
	return &smartpsi.Result{Bindings: []graph.NodeID{int32(q.Pivot)}, Candidates: 1}, nil
}

// triangleQuery is a minimal valid wire query: a labeled triangle with
// pivot 0.
func triangleQuery() *QueryJSON {
	return &QueryJSON{
		Nodes: []int64{0, 1, 0},
		Edges: [][]int64{{0, 1}, {1, 2}, {0, 2}},
		Pivot: 0,
	}
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("closing body: %v", err)
	}
	return resp, data
}

func newTestServer(t *testing.T, eval Evaluator, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(eval, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// waitUntil polls cond every millisecond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServerSingleQueryOK(t *testing.T) {
	fake := &fakeEval{result: &smartpsi.Result{
		Bindings: []graph.NodeID{3, 7}, Candidates: 9, UsedML: true,
	}}
	_, ts := newTestServer(t, fake, Config{})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var res QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if want := []int64{3, 7}; len(res.Bindings) != 2 || res.Bindings[0] != want[0] || res.Bindings[1] != want[1] {
		t.Errorf("bindings = %v, want %v", res.Bindings, want)
	}
	if res.Candidates != 9 || !res.UsedML {
		t.Errorf("candidates/used_ml = %d/%v, want 9/true", res.Candidates, res.UsedML)
	}
}

func TestServerQueryLGForm(t *testing.T) {
	fake := &fakeEval{}
	_, ts := newTestServer(t, fake, Config{})
	lg := "v 0 0\nv 1 1\ne 0 1\np 1\n"
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{QueryLG: lg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var res QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0] != 1 {
		t.Errorf("bindings = %v, want [1] (fake echoes the pivot)", res.Bindings)
	}
}

func TestServerMalformedRequests(t *testing.T) {
	fake := &fakeEval{}
	_, ts := newTestServer(t, fake, Config{MaxQueryNodes: 4, MaxBatch: 2})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{"query":`, http.StatusBadRequest},
		{"trailing garbage", `{"query":{"nodes":[0],"edges":[],"pivot":0}}{"x":1}`, http.StatusBadRequest},
		{"no query", `{}`, http.StatusBadRequest},
		{"both forms", `{"query":{"nodes":[0],"edges":[],"pivot":0},"query_lg":"v 0 0\np 0\n"}`, http.StatusBadRequest},
		{"empty nodes", `{"query":{"nodes":[],"edges":[],"pivot":0}}`, http.StatusBadRequest},
		{"negative label", `{"query":{"nodes":[-1],"edges":[],"pivot":0}}`, http.StatusBadRequest},
		{"bad edge arity", `{"query":{"nodes":[0,0],"edges":[[0]],"pivot":0}}`, http.StatusBadRequest},
		{"edge out of range", `{"query":{"nodes":[0,0],"edges":[[0,5]],"pivot":0}}`, http.StatusBadRequest},
		{"pivot out of range", `{"query":{"nodes":[0,0],"edges":[[0,1]],"pivot":7}}`, http.StatusBadRequest},
		{"disconnected", `{"query":{"nodes":[0,0,0],"edges":[[0,1]],"pivot":0}}`, http.StatusBadRequest},
		{"negative timeout", `{"query":{"nodes":[0,0],"edges":[[0,1]],"pivot":0},"timeout_ms":-5}`, http.StatusBadRequest},
		{"too many nodes", `{"query":{"nodes":[0,0,0,0,0],"edges":[[0,1],[1,2],[2,3],[3,4]],"pivot":0}}`, http.StatusRequestEntityTooLarge},
		{"bad lg", `{"query_lg":"w 0 0"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/psi", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if err := resp.Body.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, data)
			}
			var eb ErrorBody
			if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
				t.Errorf("error body = %q, want JSON with non-empty error", data)
			}
		})
	}
	if got := fake.snapshotCalls(); got != 0 {
		t.Errorf("evaluator saw %d calls from malformed requests, want 0", got)
	}
}

func TestServerMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, &fakeEval{}, Config{})
	for _, path := range []string{"/v1/psi", "/v1/psi/batch"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s status = %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestServerDeadlineStopsExecutor pins the 504 path: a request whose
// deadline passes mid-evaluation gets 504 and the executor actually
// stops — the fake returns psi.ErrDeadline at the deadline (as
// EvaluateBudget does), and the response must come back promptly
// instead of waiting for the blocked evaluation's release.
func TestServerDeadlineStopsExecutor(t *testing.T) {
	block := make(chan struct{})
	fake := &fakeEval{block: block}
	defer close(block)
	_, ts := newTestServer(t, fake, Config{})

	t0 := time.Now()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi",
		PSIRequest{Query: triangleQuery(), TimeoutMS: 50})
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if elapsed > 3*time.Second {
		t.Errorf("504 took %v; the executor did not stop at its deadline", elapsed)
	}
	if got := fake.snapshotCalls(); got != 1 {
		t.Errorf("evaluator calls = %d, want 1", got)
	}
}

// TestServerRealEngineDeadline drives the real smartpsi engine with a
// microscopic budget on a real graph: the request must 504 (or, if the
// machine is fast enough to finish, 200) — never hang, never 500.
func TestServerRealEngineDeadline(t *testing.T) {
	g, q := denseGraphAndQuery(t)
	engine, err := smartpsi.NewEngine(g, smartpsi.Options{Seed: 1})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, ts := newTestServer(t, engine, Config{})
	qj := wireQuery(t, q)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: qj, TimeoutMS: 1})
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 200 or 504 (body %s)", resp.StatusCode, body)
	}
}

// TestServerQueueFullSheds pins the 429 path: Workers=1, QueueDepth=1.
// Request A holds the only slot, request B fills the queue, request C
// must be shed with 429 and a Retry-After header without touching the
// evaluator.
func TestServerQueueFullSheds(t *testing.T) {
	block := make(chan struct{})
	fake := &fakeEval{block: block}
	s, ts := newTestServer(t, fake, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: time.Minute})

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Wait until A is evaluating and B is queued, then C must shed.
	waitUntil(t, "slot held and queue occupied", func() bool {
		return s.adm.inFlight() == 1 && s.adm.queueDepth() == 1
	})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 response missing Retry-After header")
	}
	close(block) // release A (and then B)
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("request %d status = %d, want 200", i, st)
		}
	}
	if got := fake.snapshotCalls(); got != 2 {
		t.Errorf("evaluator calls = %d, want 2 (shed request must not evaluate)", got)
	}
}

// TestServerDrain pins graceful drain: in-flight work completes, new
// work is rejected 503, readyz flips, and Drain returns once quiet.
func TestServerDrain(t *testing.T) {
	block := make(chan struct{})
	fake := &fakeEval{block: block}
	s, ts := newTestServer(t, fake, Config{Workers: 2, DefaultTimeout: time.Minute})

	var wg sync.WaitGroup
	var inflightStatus int
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
		inflightStatus = resp.StatusCode
	}()
	waitUntil(t, "request in flight", func() bool { return s.adm.inFlight() == 1 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	waitUntil(t, "drain started", s.Draining)

	// New work must bounce with 503 + Retry-After.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("503 response missing Retry-After header")
	}
	// Readiness flips while liveness holds.
	rz, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	if err := rz.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", rz.StatusCode)
	}
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if err := hz.Body.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", hz.StatusCode)
	}

	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) while a request was still in flight", err)
	default:
	}
	close(block)
	wg.Wait()
	if inflightStatus != http.StatusOK {
		t.Errorf("in-flight request finished %d, want 200 (drain must not abort it)", inflightStatus)
	}
	if err := <-drainDone; err != nil {
		t.Errorf("Drain: %v", err)
	}
	// Idempotent: a second drain returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

func TestServerDrainTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	fake := &fakeEval{block: block}
	s, ts := newTestServer(t, fake, Config{DefaultTimeout: time.Minute})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked request status = %d", resp.StatusCode)
		}
	}()
	waitUntil(t, "request in flight", func() bool { return s.adm.inFlight() == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Errorf("Drain with stuck request returned nil, want deadline error")
	}
}

// TestServerPanicIsolated pins request-scoped panic recovery: a
// panicking evaluation 500s its own request and the server keeps
// serving.
func TestServerPanicIsolated(t *testing.T) {
	fake := &fakeEval{panicOn: true}
	_, ts := newTestServer(t, fake, Config{})
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	fake.mu.Lock()
	fake.panicOn = false
	fake.mu.Unlock()
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: triangleQuery()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
}

func TestServerBatch(t *testing.T) {
	fake := &fakeEval{}
	_, ts := newTestServer(t, fake, Config{Workers: 2, MaxBatch: 8})
	req := BatchRequest{Queries: []QueryJSON{
		*triangleQuery(),
		{Nodes: []int64{0}, Edges: nil, Pivot: 0},
		{Nodes: []int64{0, 0, 0}, Edges: [][]int64{{0, 1}}, Pivot: 0}, // disconnected -> 400 item
	}}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (body %s)", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(br.Results))
	}
	if br.Succeeded != 2 || br.Failed != 1 {
		t.Errorf("succeeded/failed = %d/%d, want 2/1", br.Succeeded, br.Failed)
	}
	if br.Results[0].Status != http.StatusOK || br.Results[0].Result == nil {
		t.Errorf("item 0 = %+v, want 200 with result", br.Results[0])
	}
	if br.Results[2].Status != http.StatusBadRequest || br.Results[2].Error == "" {
		t.Errorf("item 2 = %+v, want 400 with error", br.Results[2])
	}
	if got := fake.snapshotCalls(); got != 2 {
		t.Errorf("evaluator calls = %d, want 2 (invalid item must not evaluate)", got)
	}
}

func TestServerBatchCaps(t *testing.T) {
	_, ts := newTestServer(t, &fakeEval{}, Config{MaxBatch: 2})
	req := BatchRequest{Queries: []QueryJSON{*triangleQuery(), *triangleQuery(), *triangleQuery()}}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi/batch", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d, want 413 (body %s)", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/psi/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
}

// TestServerCorrectnessAgainstDirectPSI is the end-to-end soundness
// check: bindings served over HTTP (single and batch) must equal a
// direct psi-package evaluation of the same queries.
func TestServerCorrectnessAgainstDirectPSI(t *testing.T) {
	g, q := denseGraphAndQuery(t)
	engine, err := smartpsi.NewEngine(g, smartpsi.Options{Seed: 7})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, ts := newTestServer(t, engine, Config{Workers: 4})

	want := directBindings(t, g, q)
	qj := wireQuery(t, q)

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: qj, TimeoutMS: 60000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %s)", resp.StatusCode, body)
	}
	var res QueryResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := fmt.Sprint(res.Bindings); got != fmt.Sprint(want) {
		t.Errorf("served bindings = %v, direct psi evaluation = %v", res.Bindings, want)
	}

	// The same query three times through the batch path.
	breq := BatchRequest{Queries: []QueryJSON{*qj, *qj, *qj}, TimeoutMS: 60000}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/psi/batch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (body %s)", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i, item := range br.Results {
		if item.Status != http.StatusOK {
			t.Fatalf("batch item %d status = %d (%s)", i, item.Status, item.Error)
		}
		if got := fmt.Sprint(item.Result.Bindings); got != fmt.Sprint(want) {
			t.Errorf("batch item %d bindings = %v, want %v", i, item.Result.Bindings, want)
		}
	}
}

func TestServerLabelAlphabetRejected(t *testing.T) {
	g, _ := denseGraphAndQuery(t)
	engine, err := smartpsi.NewEngine(g, smartpsi.Options{Seed: 7})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	_, ts := newTestServer(t, engine, Config{})
	// Label 99 exceeds the data graph's alphabet: client error, not 500.
	qj := &QueryJSON{Nodes: []int64{99, 0}, Edges: [][]int64{{0, 1}}, Pivot: 0}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: qj})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
}

func TestServerHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, &fakeEval{}, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Errorf("%s body %q is not JSON: %v", path, data, err)
		}
	}
}

func TestServerObsEndpointsMounted(t *testing.T) {
	_, ts := newTestServer(t, &fakeEval{}, Config{})
	for _, path := range []string{"/metrics", "/metrics.json", "/tracez", "/profilez", "/modelz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200 (obs mux must be mounted)", path, resp.StatusCode)
		}
	}
}

// --- helpers over real graphs ---

// denseGraphAndQuery builds a small but non-trivial labeled graph and
// extracts a size-4 query from it.
func denseGraphAndQuery(t *testing.T) (*graph.Graph, graph.Query) {
	t.Helper()
	const n = 60
	b := graph.NewBuilder(n, 4*n)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(i % 3))
	}
	for i := 0; i < n; i++ {
		for _, d := range []int{1, 2, 7} {
			j := (i + d) % n
			if !b.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
				if err := b.AddEdge(graph.NodeID(i), graph.NodeID(j)); err != nil {
					t.Fatalf("AddEdge: %v", err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	qb := graph.NewBuilder(4, 4)
	qb.AddNode(0)
	qb.AddNode(1)
	qb.AddNode(2)
	qb.AddNode(0)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		if err := qb.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	qg, err := qb.Build()
	if err != nil {
		t.Fatalf("Build query: %v", err)
	}
	q, err := graph.NewQuery(qg, 0)
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	return g, q
}

// wireQuery converts a graph.Query into its JSON wire form (the
// exported encoder, so the round trip through the decoder is covered).
func wireQuery(t *testing.T, q graph.Query) *QueryJSON {
	t.Helper()
	qj := QueryToJSON(q)
	return &qj
}

// directBindings evaluates q against g with the plain pessimistic
// evaluator — the reference the served bindings must match.
func directBindings(t *testing.T, g *graph.Graph, q graph.Query) []int64 {
	t.Helper()
	ref, err := referenceBindings(g, q)
	if err != nil {
		t.Fatalf("reference evaluation: %v", err)
	}
	return ref
}

// TestServerRequestCorrelation walks one request ID through the whole
// pipeline: the client sends X-Request-ID, the server echoes it,
// stamps the structured access log, files the execution profile under
// it (served by /profilez?request_id=), and threads it into the
// decision-log records the audited evaluation appends.
func TestServerRequestCorrelation(t *testing.T) {
	prevEnabled := obs.Enabled()
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(prevEnabled) })

	// Sparse random graph with enough label-0 candidates for the ML
	// path, so the audited evaluation writes decision records.
	const n, m = 300, 900
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(i % 3))
	}
	for b.NumEdges() < m {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(3, 2)
	qb.AddNode(0)
	qb.AddNode(1)
	qb.AddNode(2)
	if err := qb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := qb.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), 1)
	if err != nil {
		t.Fatal(err)
	}

	var dlogBuf bytes.Buffer
	dlog := obs.NewDecisionLog(&dlogBuf, 0)
	engine, err := smartpsi.NewEngine(g, smartpsi.Options{
		Seed: 3, MinTrainNodes: 10, MaxTrainNodes: 20, PlanSamples: 2,
		DisablePreemption: true, ShadowRate: 1, PlanShadowRate: 1,
		DecisionLog: dlog,
	})
	if err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	_, ts := newTestServer(t, engine, Config{Log: logger})

	const reqID = "corr-e2e-0042"
	buf, err := json.Marshal(PSIRequest{Query: wireQuery(t, q), TimeoutMS: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest("POST", ts.URL+"/v1/psi", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set("X-Request-ID", reqID)
	resp, err := ts.Client().Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("response X-Request-ID = %q, want %q", got, reqID)
	}

	// 1. Structured access log carries the ID.
	if !strings.Contains(logBuf.String(), `"request_id":"`+reqID+`"`) {
		t.Errorf("access log has no request_id field:\n%s", logBuf.String())
	}

	// 2. The flight recorder serves the profile by request ID.
	presp, err := ts.Client().Get(ts.URL + "/profilez?request_id=" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	pbody, err := io.ReadAll(presp.Body)
	if cerr := presp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK || !strings.Contains(string(pbody), reqID) {
		t.Errorf("/profilez?request_id= = %d\n%s", presp.StatusCode, pbody)
	}
	if code := func() int {
		r, err := ts.Client().Get(ts.URL + "/profilez?request_id=no-such-request")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = r.Body.Close() }()
		return r.StatusCode
	}(); code != http.StatusNotFound {
		t.Errorf("/profilez with unknown request_id = %d, want 404", code)
	}

	// 3. Decision-log records carry the ID.
	if err := dlog.Close(); err != nil {
		t.Fatal(err)
	}
	if dlog.Written() == 0 {
		t.Fatal("audited evaluation wrote no decision records; fixture broken")
	}
	if !strings.Contains(dlogBuf.String(), `"request_id":"`+reqID+`"`) {
		t.Errorf("decision log has no request_id field; first line:\n%.300s", dlogBuf.String())
	}

	// 4. A request without the header gets a server-minted ID.
	resp2, _ := postJSON(t, ts.Client(), ts.URL+"/v1/psi", PSIRequest{Query: wireQuery(t, q), TimeoutMS: 30_000})
	if got := resp2.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated request ID = %q, want 16 hex chars", got)
	}
}

// TestServerDynamicRetryAfter pins the sampler-derived Retry-After:
// with a windowed served-request rate the hint reflects queue-drain
// time; without one it falls back to the static config.
func TestServerDynamicRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	req := reg.Counter("server_requests_total", "requests")
	sampler := obs.NewSampler(reg, time.Second, 16)

	s := NewServer(&fakeEval{}, Config{RetryAfter: 7 * time.Second, Sampler: sampler})

	// No samples yet: static fallback.
	if got := s.retryAfterSeconds(); got != "7" {
		t.Errorf("fallback Retry-After = %s, want 7", got)
	}

	// 10 requests/s served, 0 queued: ceil(1/10) -> 1s.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sampler.SampleAt(base)
	req.Add(100)
	sampler.SampleAt(base.Add(10 * time.Second))
	if got := s.retryAfterSeconds(); got != "1" {
		t.Errorf("drain-rate Retry-After = %s, want 1", got)
	}

	// All traffic shed inside the window: no drain capacity, so the
	// dynamic estimate declines and the static fallback applies.
	reg2 := obs.NewRegistry()
	req2 := reg2.Counter("server_requests_total", "requests")
	shed2 := reg2.Counter("server_shed_total", "sheds")
	sampler2 := obs.NewSampler(reg2, time.Second, 16)
	sShed := NewServer(&fakeEval{}, Config{RetryAfter: 5 * time.Second, Sampler: sampler2})
	sampler2.SampleAt(base)
	req2.Add(50)
	shed2.Add(50)
	sampler2.SampleAt(base.Add(10 * time.Second))
	if secs, ok := sShed.drainRetrySeconds(); ok {
		t.Errorf("drainRetrySeconds with zero served rate = %d, want fallback", secs)
	}
	if got := sShed.retryAfterSeconds(); got != "5" {
		t.Errorf("all-shed Retry-After = %s, want static 5", got)
	}

	// No sampler at all: static fallback.
	s2 := NewServer(&fakeEval{}, Config{RetryAfter: 3 * time.Second})
	if got := s2.retryAfterSeconds(); got != "3" {
		t.Errorf("no-sampler Retry-After = %s, want 3", got)
	}
}
