package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// errShed reports that the admission queue was full and the query was
// load-shed (HTTP 429 with Retry-After).
var errShed = errors.New("server: admission queue full, query shed")

// admission is the server's concurrency guardrail: a counting semaphore
// of worker slots fronted by a bounded wait queue. A query first tries
// to take a slot without waiting; if every slot is busy it joins the
// queue — unless the queue is at capacity, in which case it is shed
// immediately (the caller turns that into 429 + Retry-After). Queued
// queries give up when their request deadline passes, so the queue can
// never hold work that nobody is waiting for.
//
// The queue bound is enforced with an atomic counter rather than a
// second channel: an over-subscribed Add is detected and immediately
// undone, so the bound holds exactly, and the waiter count doubles as
// the server_queue_depth gauge.
type admission struct {
	slots    chan struct{} // capacity = workers; a held token is a running query
	queueCap int64
	queued   atomic.Int64
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		slots:    make(chan struct{}, workers),
		queueCap: int64(queueDepth),
	}
}

// acquire obtains a worker slot, waiting in the bounded queue if
// necessary. It returns errShed when the queue is full, or ctx.Err()
// when the context expires while queued. On success the caller must
// release().
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a slot is free, skip the queue entirely.
	select {
	case a.slots <- struct{}{}:
		obs.ServerInFlight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		obs.ServerShed.Inc()
		return errShed
	}
	obs.ServerQueueDepth.Set(a.queued.Load())
	start := time.Now()
	defer func() {
		obs.ServerQueueDepth.Set(a.queued.Add(-1))
		obs.ServerAdmitWait.Observe(time.Since(start).Seconds())
	}()
	select {
	case a.slots <- struct{}{}:
		obs.ServerInFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot taken by acquire.
func (a *admission) release() {
	<-a.slots
	obs.ServerInFlight.Add(-1)
}

// queueDepth returns the current number of queued waiters.
func (a *admission) queueDepth() int64 { return a.queued.Load() }

// inFlight returns the number of held worker slots.
func (a *admission) inFlight() int { return len(a.slots) }
