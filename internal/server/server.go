// Package server is the long-lived serving path for the SmartPSI
// executor: a stdlib-only HTTP/JSON query service (cmd/psi-serve) that
// loads one data graph — signatures built once, prediction machinery
// warm — and answers PSI queries over it with production guardrails.
//
// Routes:
//
//	POST /v1/psi        one pivoted query -> its pivot bindings
//	POST /v1/psi/batch  up to MaxBatch queries scheduled across the
//	                    bounded worker pool under one shared deadline
//	GET  /healthz       liveness: 200 as long as the process serves
//	GET  /readyz        readiness: 200 when accepting work, 503 draining
//	(everything else)   the internal/obs debug mux: /metrics,
//	                    /metrics.json, /tracez, /profilez, /modelz,
//	                    /seriesz, /alertz, /debugz/bundle, /debug/pprof
//	                    (403 unless Config.ExposePprof) — see
//	                    OPERATIONS.md
//
// Every request passes the same guardrail pipeline:
//
//	decode/validate -> admission -> deadline-bounded evaluation -> encode
//
// Admission control is a counting semaphore of Workers slots fronted by
// a bounded wait queue of QueueDepth entries; when the queue is full the
// query is shed immediately with 429 and a Retry-After hint, which keeps
// tail latency bounded under overload instead of letting the queue grow
// without bound. The per-request deadline (timeout_ms, clamped to
// MaxTimeout) covers the admission wait and is propagated into the
// preemptive executor's global budget (smartpsi.EvaluateBudget), so a
// deadline doesn't just abandon the response — it stops the evaluation
// itself (504). A panic while evaluating one request is recovered into a
// 500 for that request only. Drain flips readiness, rejects new work
// with 503, and waits for in-flight queries to finish, so a SIGTERM
// under an orchestrator loses no accepted work.
//
// Requests are correlated end to end: the server accepts or mints an
// X-Request-ID, echoes it on the response, logs it in the structured
// access log, and threads it into the evaluator's query trace,
// execution profile and decision-log records, so one served query can
// be followed from the log line to /profilez?request_id= to the
// decision log.
//
// The server publishes its own metric family (server_* in internal/obs:
// queue depth, in-flight, shed/drain/panic/deadline counters, per-route
// latency histograms) and, because collection is enabled in a serving
// process, every query feeds the per-query trace ring, the /profilez
// flight recorder, and the /modelz decision telemetry exactly as the
// one-shot CLIs do.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/psi"
	"repro/internal/shard"
	"repro/internal/smartpsi"
)

// Evaluator is the query-evaluation dependency of the server:
// *smartpsi.Engine in production, fakes in the tests. EvaluateBudget
// must honor the deadline by aborting with psi.ErrDeadline (wrapped or
// not) and must be safe for concurrent calls.
type Evaluator interface {
	EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error)
}

// requestEvaluator is the optional extension implemented by evaluators
// (smartpsi.Engine) that can thread the serving request ID into their
// trace, profile and decision-log telemetry. Plain Evaluators still
// work; they just produce uncorrelated records.
type requestEvaluator interface {
	EvaluateRequest(q graph.Query, deadline time.Time, requestID string) (*smartpsi.Result, error)
}

// taggedEvaluator is the further extension that also accepts the shape
// fingerprint the server computed at admission, so the evaluator does
// not re-derive it and the profile/decision-log records carry the same
// key /queryz groups by.
type taggedEvaluator interface {
	EvaluateTagged(q graph.Query, deadline time.Time, requestID, fingerprint string) (*smartpsi.Result, error)
}

// scatterEvaluator is the sharded-serving extension: evaluators that
// fan a query out across shards (shard.Cluster in-process, Coordinator
// over HTTP) return the full Gather so the handlers can surface the
// partial-result flag and per-shard outcomes on the wire.
type scatterEvaluator interface {
	EvaluateScatter(q graph.Query, deadline time.Time, requestID, fingerprint string) (*shard.Gather, error)
}

// shardStatusProvider is the optional extension surfacing per-shard
// health rows in /readyz (shard.Cluster, shard.Node and Coordinator).
type shardStatusProvider interface {
	ShardStatuses() []shard.Status
}

var (
	_ Evaluator        = (*smartpsi.Engine)(nil)
	_ requestEvaluator = (*smartpsi.Engine)(nil)
	_ taggedEvaluator  = (*smartpsi.Engine)(nil)
	_ scatterEvaluator = (*shard.Cluster)(nil)
	_ Evaluator        = (*shard.Cluster)(nil)
	_ taggedEvaluator  = (*shard.Node)(nil)
)

// Config tunes the server's guardrails. The zero value gives sensible
// defaults for a small deployment.
type Config struct {
	// Workers is the number of queries evaluated concurrently (the
	// admission semaphore's capacity). Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission wait queue; a query arriving with
	// the queue full is shed with 429. Default 64. Zero is valid only
	// via ShedImmediately (the zero value means "default").
	QueueDepth int
	// ShedImmediately forces QueueDepth 0: any query that cannot start
	// at once is shed. Overload tests and strict-latency deployments.
	ShedImmediately bool
	// DefaultTimeout applies when a request carries no timeout_ms.
	// Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Default 30s.
	MaxTimeout time.Duration
	// MaxBatch bounds queries per /v1/psi/batch request. Default 64.
	MaxBatch int
	// MaxQueryNodes bounds the size of one query graph. Default 32.
	MaxQueryNodes int
	// MaxBodyBytes bounds a request body. Default 1 MiB.
	MaxBodyBytes int64
	// RetryAfter is the static hint sent with 429/503 responses when no
	// Sampler is wired (or before it holds samples). Default 1s, rounded
	// up to whole seconds on the wire.
	RetryAfter time.Duration
	// Sampler, when non-nil, is the obs time-series sampler: it mounts
	// /seriesz on the debug mux and replaces the static RetryAfter hint
	// with an estimate from the observed queue-drain rate.
	Sampler *obs.Sampler
	// Alerts, when non-nil, mounts /alertz on the debug mux.
	Alerts *obs.SLOSet
	// RateWindow is the trailing window for the Sampler-derived drain
	// rate. Default 30s.
	RateWindow time.Duration
	// Log, when non-nil, receives one structured access-log line per
	// /v1 request (with its request ID) plus one line per rejected or
	// failed request.
	Log *slog.Logger
	// Bundler, when non-nil, mounts /debugz/bundle on the debug mux and
	// (when armed with a bundle directory) auto-captures a diagnostic
	// bundle whenever an SLO objective starts firing.
	Bundler *obs.Bundler
	// Workload, when non-nil, arms workload analytics: every /v1 query
	// is canonically fingerprinted at admission, folded into this top-K
	// sketch, and /queryz is mounted on the debug mux. Nil keeps the
	// serving path fingerprint-free (the nil-sketch fast path).
	Workload *obs.Workload
	// ExposePprof mounts /debug/pprof on the serving listener. Default
	// false: the serving port answers pprof with 403, because the CPU
	// profile and symbol endpoints expose process internals and can
	// degrade the serving path; a dedicated -debug-addr listener keeps
	// the full surface. See OPERATIONS.md.
	ExposePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ShedImmediately {
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxQueryNodes <= 0 {
		c.MaxQueryNodes = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 30 * time.Second
	}
	return c
}

// Server owns the admission controller, the route table, and the drain
// state for one Evaluator. Construct with NewServer, serve via Handler,
// stop via Drain.
type Server struct {
	eval Evaluator
	cfg  Config
	adm  *admission
	mux  *http.ServeMux

	mu       sync.Mutex
	draining bool
	inflight int           // in-flight HTTP requests (not worker slots)
	drained  chan struct{} // closed when draining && inflight == 0
	start    time.Time
}

// NewServer wires a server over eval. The obs debug handler (metrics,
// traces, profiles, model telemetry, pprof) is mounted as the fallback
// route so one port serves both the query API and its introspection.
func NewServer(eval Evaluator, cfg Config) *Server {
	s := &Server{
		eval:    eval,
		cfg:     cfg.withDefaults(),
		drained: make(chan struct{}),
		start:   time.Now(),
	}
	s.adm = newAdmission(s.cfg.Workers, s.cfg.QueueDepth)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/psi", s.handlePSI)
	s.mux.HandleFunc("/v1/psi/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/", obs.Handler(obs.Default, obs.DefaultTracer, obs.DefaultRecorder,
		obs.WithSampler(s.cfg.Sampler), obs.WithAlerts(s.cfg.Alerts),
		obs.WithBundler(s.cfg.Bundler), obs.WithWorkload(s.cfg.Workload),
		obs.WithPprof(s.cfg.ExposePprof)))
	return s
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// requestIDHeader is the correlation header: an incoming value is
// accepted (trimmed, length-capped), otherwise a fresh ID is generated.
// The resolved ID is echoed on the response and threaded through the
// access log, the query trace, the execution profile and the
// decision-log records.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen caps accepted client-supplied request IDs.
const maxRequestIDLen = 128

type requestIDKey struct{}

// RequestIDFrom returns the request ID resolved by Handler for this
// request's context, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// fingerprintKey carries a per-request slot the query handlers fill
// with the canonical shape fingerprint once it is known (after decode,
// inside the handler), so the access log — which runs in the outer
// Handler wrapper — can pick it up without re-deriving it.
type fingerprintKey struct{}

// fingerprintFrom reads the fingerprint slot, or "" when the request
// never reached fingerprinting (non-query route, decode failure,
// workload analytics unarmed).
func fingerprintFrom(ctx context.Context) string {
	if slot, ok := ctx.Value(fingerprintKey{}).(*string); ok {
		return *slot
	}
	return ""
}

// setFingerprint fills the request's fingerprint slot, if present.
func setFingerprint(ctx context.Context, fp string) {
	if slot, ok := ctx.Value(fingerprintKey{}).(*string); ok {
		*slot = fp
	}
}

// newRequestID generates a 16-hex-char random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in serious trouble;
		// a constant keeps the serving path alive.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// resolveRequestID accepts the client's X-Request-ID or mints one.
func resolveRequestID(r *http.Request) string {
	id := strings.TrimSpace(r.Header.Get(requestIDHeader))
	if id == "" {
		return newRequestID()
	}
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	return id
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Handler returns the server's routes wrapped in request correlation
// (accept or generate an X-Request-ID, echo it, stash it in the
// context), a structured access log, and request-scoped panic
// recovery: a panic anywhere below turns into a 500 for that request
// and a server_panics_total increment, never a crashed process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := resolveRequestID(r)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(requestIDHeader, reqID)
		ctx := context.WithValue(r.Context(), requestIDKey{}, reqID)
		ctx = context.WithValue(ctx, fingerprintKey{}, new(string))
		r = r.WithContext(ctx)
		t0 := time.Now()
		defer s.accessLog(r, reqID, sw, t0)
		defer func() {
			if p := recover(); p != nil {
				obs.ServerPanics.Inc()
				s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				// Headers may already be out; WriteHeader then is a
				// no-op and the client sees a truncated body.
				writeError(sw, http.StatusInternalServerError, "internal error")
			}
		}()
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		s.mux.ServeHTTP(sw, r)
	})
}

// accessLog emits one structured line per request — /v1 traffic at
// info, the debug surface at debug (a scraped /metrics should not
// drown the log) — and files /v1 entries into the process-wide access
// ring so diagnostic bundles can reconstruct recent traffic.
func (s *Server) accessLog(r *http.Request, reqID string, sw *statusWriter, t0 time.Time) {
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	isV1 := strings.HasPrefix(r.URL.Path, "/v1/")
	if isV1 {
		obs.DefaultAccess.Append(obs.AccessEntry{
			Time:        t0,
			Method:      r.Method,
			Path:        r.URL.Path,
			Status:      status,
			DurationMS:  float64(time.Since(t0).Nanoseconds()) / 1e6,
			RequestID:   reqID,
			Fingerprint: fingerprintFrom(r.Context()),
		})
	}
	if s.cfg.Log == nil {
		return
	}
	level := slog.LevelDebug
	if isV1 {
		level = slog.LevelInfo
	}
	s.cfg.Log.Log(r.Context(), level, "request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"duration_ms", float64(time.Since(t0).Nanoseconds())/1e6,
		"request_id", reqID,
	)
}

// dataGraph returns the evaluator's data graph when it exposes one
// (smartpsi.Engine does), else nil.
func (s *Server) dataGraph() *graph.Graph {
	if gp, ok := s.eval.(interface{ Graph() *graph.Graph }); ok {
		return gp.Graph()
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Warn(fmt.Sprintf(format, args...))
	}
}

// begin registers one in-flight HTTP request; it fails when the server
// is draining.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// end retires one in-flight HTTP request and completes the drain when
// it was the last.
func (s *Server) end() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		s.closeDrainedLocked()
	}
	s.mu.Unlock()
}

// closeDrainedLocked closes the drained channel exactly once. Caller
// holds mu.
func (s *Server) closeDrainedLocked() {
	select {
	case <-s.drained:
	default:
		close(s.drained)
	}
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admitting new requests (readyz flips to 503, /v1 routes
// reject with 503 + Retry-After) and waits for every in-flight request
// to complete, or for ctx to expire — in which case the remaining
// requests keep running and the error reports how many were abandoned.
// Drain is idempotent; concurrent calls all wait for the same drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		obs.ServerDraining.Set(1)
		if s.inflight == 0 {
			s.closeDrainedLocked()
		}
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("server: drain expired with %d requests in flight: %w", n, ctx.Err())
	}
}

// deadlineFor resolves a request's timeout_ms into an absolute
// deadline, applying the default and the clamp.
func (s *Server) deadlineFor(timeoutMS int64) (time.Time, error) {
	if timeoutMS < 0 {
		return time.Time{}, badRequest("timeout_ms must be >= 0, got %d", timeoutMS)
	}
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return time.Now().Add(d), nil
}

// errPanic marks an evaluator panic recovered by safeEvaluate.
var errPanic = errors.New("server: evaluator panic")

// safeEvaluate runs one evaluation with request-scoped panic recovery:
// a panicking evaluation poisons only its own request. Evaluators that
// support request correlation get the request ID (and, when workload
// analytics armed it, the admission-time fingerprint) threaded through.
func (s *Server) safeEvaluate(q graph.Query, deadline time.Time, requestID, fingerprint string) (res *smartpsi.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			obs.ServerPanics.Inc()
			s.logf("evaluator panic: %v", p)
			res, err = nil, fmt.Errorf("%w: %v", errPanic, p)
		}
	}()
	if te, ok := s.eval.(taggedEvaluator); ok && fingerprint != "" {
		return te.EvaluateTagged(q, deadline, requestID, fingerprint)
	}
	if re, ok := s.eval.(requestEvaluator); ok && requestID != "" {
		return re.EvaluateRequest(q, deadline, requestID)
	}
	return s.eval.EvaluateBudget(q, deadline)
}

// safeScatterEvaluate is safeEvaluate for scatter-capable evaluators:
// same panic recovery, but the Gather (partial flag, per-shard
// outcomes) survives to the response encoder. gth is nil exactly when
// err is non-nil. A partial gather counts against the availability SLO:
// the client was answered, but not completely.
func (s *Server) safeScatterEvaluate(sc scatterEvaluator, q graph.Query, deadline time.Time, requestID, fingerprint string) (gth *shard.Gather, err error) {
	defer func() {
		if p := recover(); p != nil {
			obs.ServerPanics.Inc()
			s.logf("evaluator panic: %v", p)
			gth, err = nil, fmt.Errorf("%w: %v", errPanic, p)
		}
	}()
	gth, err = sc.EvaluateScatter(q, deadline, requestID, fingerprint)
	if err != nil {
		return nil, err
	}
	if gth.Partial {
		obs.ServerPartials.Inc()
		s.logf("partial answer: %d/%d shards responded", len(gth.Outcomes)-lostShards(gth), len(gth.Outcomes))
	}
	return gth, nil
}

// lostShards counts the outcomes that did not answer.
func lostShards(gth *shard.Gather) int {
	n := 0
	for _, o := range gth.Outcomes {
		if !o.OK() {
			n++
		}
	}
	return n
}

// fingerprintQuery computes the canonical fingerprint of one admitted
// query — once, before evaluation — when workload analytics is armed.
// The zero Fingerprint (ok=false) means "unarmed": no sketch, no
// per-query canonicalization work on the serving path.
func (s *Server) fingerprintQuery(q graph.Query) (fsm.Fingerprint, bool) {
	if s.cfg.Workload == nil {
		return fsm.Fingerprint{}, false
	}
	return fsm.PivotFingerprint(q, 0), true
}

// observeQuery folds one terminal query outcome into the workload
// sketch. res may be nil (shed, queued-deadline and error paths).
func (s *Server) observeQuery(q graph.Query, fp fsm.Fingerprint, outcome string, wall time.Duration, res *smartpsi.Result) {
	if s.cfg.Workload == nil {
		return
	}
	o := obs.QueryObservation{
		Shape:      fp.Shape,
		Exact:      fp.Exact,
		Approx:     fp.Approx,
		Nodes:      q.G.NumNodes(),
		Edges:      int(q.G.NumEdges()),
		PivotLabel: int(q.G.Label(q.Pivot)),
		Outcome:    outcome,
		Wall:       wall,
	}
	if res != nil {
		o.Example = res.Profile.Name()
		o.Work = res.Work.Recursions
		o.Candidates = int64(res.Candidates)
		o.Bindings = int64(len(res.Bindings))
		o.CacheHits = res.CacheHits
		o.Flips = res.Flips
		o.Fallbacks = res.Fallbacks
		o.ModeMix = res.Profile.ModeMix()
		o.UsedML = res.UsedML
		o.Funnel = res.Profile.FunnelTotals()
	}
	s.cfg.Workload.Observe(o)
}

// workloadOutcome maps an admission or evaluation error onto the
// workload-sketch outcome taxonomy. ok=false means the outcome should
// not be observed at all (client gone — nobody was answered).
func workloadOutcome(err error) (string, bool) {
	switch {
	case err == nil:
		return obs.WorkloadOutcomeOK, true
	case errors.Is(err, errShed):
		return obs.WorkloadOutcomeShed, true
	case errors.Is(err, psi.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return obs.WorkloadOutcomeDeadline, true
	case errors.Is(err, context.Canceled):
		return "", false
	default:
		return obs.WorkloadOutcomeError, true
	}
}

// retryAfterSeconds renders the Retry-After hint, at least 1 second:
// the sampler-derived drain estimate when available, else the static
// configured hint.
func (s *Server) retryAfterSeconds() string {
	if secs, ok := s.drainRetrySeconds(); ok {
		return strconv.Itoa(secs)
	}
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// drainRetrySeconds estimates how long the current admission queue
// takes to drain at the sampler's windowed served-request rate
// (requests minus sheds), clamped to [1s, 60s]. ok is false without a
// sampler or before it holds two samples in the window — callers fall
// back to the static hint.
func (s *Server) drainRetrySeconds() (int, bool) {
	if s.cfg.Sampler == nil {
		return 0, false
	}
	total, ok := s.cfg.Sampler.CounterRate("server_requests_total", s.cfg.RateWindow)
	if !ok {
		return 0, false
	}
	shed, _ := s.cfg.Sampler.CounterRate("server_shed_total", s.cfg.RateWindow)
	drain := total - shed
	if drain <= 0 {
		return 0, false
	}
	secs := int(math.Ceil((float64(s.adm.queueDepth()) + 1) / drain))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs, true
}

// rejectDraining writes the 503 a draining server sends to new work.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	obs.ServerDrainRejects.Inc()
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeError(w, http.StatusServiceUnavailable, "server is draining")
}

// handlePSI serves POST /v1/psi: decode -> validate -> admission ->
// deadline-bounded evaluation -> encode.
func (s *Server) handlePSI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	obs.ServerRequests.Inc()
	t0 := time.Now()
	defer func() { obs.ServerPSISeconds.Observe(time.Since(t0).Seconds()) }()
	if !s.begin() {
		s.rejectDraining(w)
		return
	}
	defer s.end()

	var req PSIRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeRequestError(w, err)
		return
	}
	q, err := s.buildQuery(req.Query, req.QueryLG)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	deadline, err := s.deadlineFor(req.TimeoutMS)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}

	// Fingerprint once at admission: the canonical shape key feeds the
	// workload sketch, the access log, and (via EvaluateTagged) the
	// profile and decision-log records for this query.
	fp, armed := s.fingerprintQuery(q)
	fpStr := ""
	if armed {
		fpStr = fp.String()
		setFingerprint(r.Context(), fpStr)
	}

	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		if out, ok := workloadOutcome(err); ok {
			s.observeQuery(q, fp, out, time.Since(t0), nil)
		}
		s.writeAdmissionError(w, err)
		return
	}
	defer s.adm.release()

	evalStart := time.Now()
	var res *smartpsi.Result
	var gth *shard.Gather
	if sc, isScatter := s.eval.(scatterEvaluator); isScatter {
		gth, err = s.safeScatterEvaluate(sc, q, deadline, RequestIDFrom(r.Context()), fpStr)
		if gth != nil {
			res = gth.Res
		}
	} else {
		res, err = s.safeEvaluate(q, deadline, RequestIDFrom(r.Context()), fpStr)
	}
	if out, ok := workloadOutcome(err); ok {
		s.observeQuery(q, fp, out, time.Since(evalStart), res)
	}
	if err != nil {
		s.writeEvalError(w, err)
		return
	}
	qr := resultJSON(res, time.Since(evalStart))
	if gth != nil {
		attachGather(qr, gth)
	}
	writeJSON(w, http.StatusOK, qr)
}

// handleBatch serves POST /v1/psi/batch: every query is validated up
// front, then scheduled across the worker pool through the same
// admission controller single queries use — a big batch on a busy
// server gets exactly its fair share of slots and sheds the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	obs.ServerRequests.Inc()
	t0 := time.Now()
	defer func() { obs.ServerBatchSeconds.Observe(time.Since(t0).Seconds()) }()
	if !s.begin() {
		s.rejectDraining(w)
		return
	}
	defer s.end()

	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeRequestError(w, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeRequestError(w, badRequest("queries is empty"))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.writeRequestError(w, &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("batch has %d queries, server cap is %d", len(req.Queries), s.cfg.MaxBatch)})
		return
	}
	deadline, err := s.deadlineFor(req.TimeoutMS)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	obs.ServerBatchQueries.Add(int64(len(req.Queries)))
	obs.ServerBatchSize.Observe(float64(len(req.Queries)))

	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	reqID := RequestIDFrom(r.Context())
	items := make([]BatchItem, len(req.Queries))
	var wg sync.WaitGroup
	for i := range req.Queries {
		q, err := s.buildQuery(&req.Queries[i], "")
		if err != nil {
			items[i] = errorItem(err)
			continue
		}
		wg.Add(1)
		go func(i int, q graph.Query) {
			defer wg.Done()
			fp, armed := s.fingerprintQuery(q)
			fpStr := ""
			if armed {
				fpStr = fp.String()
			}
			qStart := time.Now()
			if err := s.adm.acquire(ctx); err != nil {
				if out, ok := workloadOutcome(err); ok {
					s.observeQuery(q, fp, out, time.Since(qStart), nil)
				}
				items[i] = admissionItem(err)
				return
			}
			defer s.adm.release()
			evalStart := time.Now()
			var res *smartpsi.Result
			var gth *shard.Gather
			var err error
			if sc, isScatter := s.eval.(scatterEvaluator); isScatter {
				gth, err = s.safeScatterEvaluate(sc, q, deadline, reqID, fpStr)
				if gth != nil {
					res = gth.Res
				}
			} else {
				res, err = s.safeEvaluate(q, deadline, reqID, fpStr)
			}
			if out, ok := workloadOutcome(err); ok {
				s.observeQuery(q, fp, out, time.Since(evalStart), res)
			}
			if err != nil {
				items[i] = evalItem(err)
				return
			}
			qr := resultJSON(res, time.Since(evalStart))
			if gth != nil {
				attachGather(qr, gth)
			}
			items[i] = BatchItem{Status: http.StatusOK, Result: qr}
		}(i, q)
	}
	wg.Wait()

	resp := BatchResponse{Results: items, ElapsedMS: float64(time.Since(t0).Nanoseconds()) / 1e6}
	for _, it := range items {
		if it.Status == http.StatusOK {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness: 200 with uptime as long as the process
// can serve HTTP at all (draining included — the process is healthy,
// just not ready).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is readiness: 200 while accepting work, 503 once a
// drain has started. Orchestrators use this to stop routing traffic
// before the pod goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	body := map[string]any{
		"status":      "ready",
		"workers":     s.cfg.Workers,
		"queue_depth": s.adm.queueDepth(),
		"in_flight":   s.adm.inFlight(),
	}
	// Sharded evaluators surface per-shard health rows. A coordinator
	// with a lost shard stays ready — it serves flagged partial answers
	// — but the rows tell the operator (and the fleet smoke test) which
	// shard to chase.
	if sp, ok := s.eval.(shardStatusProvider); ok {
		statuses := sp.ShardStatuses()
		body["shards"] = statuses
		healthy := 0
		for _, st := range statuses {
			if st.Healthy {
				healthy++
			}
		}
		body["shards_healthy"] = healthy
	}
	writeJSON(w, http.StatusOK, body)
}

// writeRequestError maps pre-admission failures (decode, validation,
// size caps) onto their 4xx responses.
func (s *Server) writeRequestError(w http.ResponseWriter, err error) {
	obs.ServerBadRequests.Inc()
	var he *httpError
	if errors.As(err, &he) {
		s.logf("bad request: %s", he.msg)
		writeError(w, he.status, "%s", he.msg)
		return
	}
	s.logf("bad request: %v", err)
	writeError(w, http.StatusBadRequest, "%v", err)
}

// writeAdmissionError maps admission failures: queue full -> 429 +
// Retry-After, deadline while queued -> 504, client gone -> nothing.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errShed):
		s.logf("shed: queue full")
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
	case errors.Is(err, context.DeadlineExceeded):
		obs.ServerDeadlineHits.Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission")
	default:
		// Client disconnected while queued; nobody is listening.
	}
}

// writeEvalError maps evaluation failures: deadline -> 504 (the
// executor has already stopped — EvaluateBudget aborts the search
// itself), panic -> 500, anything else -> 500.
func (s *Server) writeEvalError(w http.ResponseWriter, err error) {
	var re *shard.RadiusError
	switch {
	case errors.As(err, &re):
		// Sharded serving cannot answer a query deeper than its halo
		// supports; that is a property of the query, so a client error.
		obs.ServerBadRequests.Inc()
		writeError(w, http.StatusBadRequest, "%v", re)
	case errors.Is(err, psi.ErrDeadline):
		obs.ServerDeadlineHits.Inc()
		writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, errPanic):
		writeError(w, http.StatusInternalServerError, "internal error evaluating query")
	default:
		s.logf("evaluation error: %v", err)
		writeError(w, http.StatusInternalServerError, "evaluation failed: %v", err)
	}
}

// errorItem, admissionItem and evalItem are the batch-item analogues of
// the single-query error writers.
func errorItem(err error) BatchItem {
	obs.ServerBadRequests.Inc()
	var he *httpError
	if errors.As(err, &he) {
		return BatchItem{Status: he.status, Error: he.msg}
	}
	return BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
}

func admissionItem(err error) BatchItem {
	switch {
	case errors.Is(err, errShed):
		return BatchItem{Status: http.StatusTooManyRequests, Error: "server overloaded, retry later"}
	case errors.Is(err, context.DeadlineExceeded):
		obs.ServerDeadlineHits.Inc()
		return BatchItem{Status: http.StatusGatewayTimeout, Error: "deadline exceeded while queued for admission"}
	default:
		return BatchItem{Status: http.StatusGatewayTimeout, Error: "request cancelled"}
	}
}

func evalItem(err error) BatchItem {
	var re *shard.RadiusError
	switch {
	case errors.As(err, &re):
		obs.ServerBadRequests.Inc()
		return BatchItem{Status: http.StatusBadRequest, Error: re.Error()}
	case errors.Is(err, psi.ErrDeadline):
		obs.ServerDeadlineHits.Inc()
		return BatchItem{Status: http.StatusGatewayTimeout, Error: "query deadline exceeded"}
	case errors.Is(err, errPanic):
		return BatchItem{Status: http.StatusInternalServerError, Error: "internal error evaluating query"}
	default:
		return BatchItem{Status: http.StatusInternalServerError, Error: "evaluation failed: " + err.Error()}
	}
}
