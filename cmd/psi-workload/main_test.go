package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

func TestParseSizes(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"5", 5, 5, true},
		{"4-10", 4, 10, true},
		{"x", 0, 0, false},
		{"4-x", 0, 0, false},
		{"x-4", 0, 0, false},
		{"0", 0, 0, false},
		{"7-3", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseSizes(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseSizes(%q): err = %v", c.in, err)
			continue
		}
		if c.ok && (lo != c.lo || hi != c.hi) {
			t.Errorf("parseSizes(%q) = %d-%d, want %d-%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestRunExtractsWorkload(t *testing.T) {
	dir := t.TempDir()
	// A small but connected graph file.
	gp := filepath.Join(dir, "g.lg")
	content := "t # 0\n"
	for i := 0; i < 30; i++ {
		content += "v " + itoa(i) + " L" + itoa(i%3) + "\n"
	}
	for i := 0; i < 29; i++ {
		content += "e " + itoa(i) + " " + itoa(i+1) + "\n"
	}
	for i := 0; i < 15; i++ {
		content += "e " + itoa(i) + " " + itoa(i+15) + "\n"
	}
	if err := os.WriteFile(gp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "q.lg")
	if err := run(gp, "", "3-4", 5, 1, out, false, 1, auditOptions{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	qs, err := graph.ParseQuerySetLG(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Errorf("extracted %d queries, want 10", len(qs))
	}
	// Error paths.
	if err := run("", "", "3", 1, 1, "", false, 1, auditOptions{}); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run(gp, "", "bogus", 1, 1, "", false, 1, auditOptions{}); err == nil {
		t.Error("bogus sizes accepted")
	}
}

// TestObsWorkloadDebugServerAcceptance mirrors the manual acceptance
// flow: start the debug server, evaluate an extracted workload with
// SmartPSI, and scrape /metrics expecting the headline counters.
func TestObsWorkloadDebugServerAcceptance(t *testing.T) {
	prevEnabled := obs.Enabled()
	defer obs.Enable(prevEnabled)

	dir := t.TempDir()
	gp := filepath.Join(dir, "g.lg")
	content := "t # 0\n"
	for i := 0; i < 60; i++ {
		content += "v " + itoa(i) + " L" + itoa(i%3) + "\n"
	}
	for i := 0; i < 59; i++ {
		content += "e " + itoa(i) + " " + itoa(i+1) + "\n"
	}
	for i := 0; i < 30; i += 2 {
		content += "e " + itoa(i) + " " + itoa(i+30) + "\n"
	}
	if err := os.WriteFile(gp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	addr, closeFn, err := obs.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := closeFn(); err != nil {
			t.Errorf("close debug server: %v", err)
		}
	}()

	out := filepath.Join(dir, "q.lg")
	if err := run(gp, "", "3-4", 4, 1, out, true, 2, auditOptions{}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every headline metric from the acceptance checklist must be
	// exported; the work counters must additionally be non-zero after a
	// real evaluation pass.
	for _, name := range []string{
		"psi_recursions_total",
		"psi_sig_prunes_total",
		"smartpsi_cache_hits_total",
		"smartpsi_recoveries_total",
		"smartpsi_mode_mispredictions_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	for _, name := range []string{"psi_recursions_total", "smartpsi_queries_total"} {
		if v := metricValue(t, text, name); v <= 0 {
			t.Errorf("%s = %d, want > 0", name, v)
		}
	}
}

// metricValue extracts a counter's value from Prometheus text output.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (-?\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics output", name)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
