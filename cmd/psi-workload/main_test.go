package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestParseSizes(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"5", 5, 5, true},
		{"4-10", 4, 10, true},
		{"x", 0, 0, false},
		{"4-x", 0, 0, false},
		{"x-4", 0, 0, false},
		{"0", 0, 0, false},
		{"7-3", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseSizes(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseSizes(%q): err = %v", c.in, err)
			continue
		}
		if c.ok && (lo != c.lo || hi != c.hi) {
			t.Errorf("parseSizes(%q) = %d-%d, want %d-%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestRunExtractsWorkload(t *testing.T) {
	dir := t.TempDir()
	// A small but connected graph file.
	gp := filepath.Join(dir, "g.lg")
	content := "t # 0\n"
	for i := 0; i < 30; i++ {
		content += "v " + itoa(i) + " L" + itoa(i%3) + "\n"
	}
	for i := 0; i < 29; i++ {
		content += "e " + itoa(i) + " " + itoa(i+1) + "\n"
	}
	for i := 0; i < 15; i++ {
		content += "e " + itoa(i) + " " + itoa(i+15) + "\n"
	}
	if err := os.WriteFile(gp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "q.lg")
	if err := run(gp, "", "3-4", 5, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	qs, err := graph.ParseQuerySetLG(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Errorf("extracted %d queries, want 10", len(qs))
	}
	// Error paths.
	if err := run("", "", "3", 1, 1, ""); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run(gp, "", "bogus", 1, 1, ""); err == nil {
		t.Error("bogus sizes accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
