// Command psi-workload extracts query workloads from a data graph by
// random walk with restart (the paper's Section 5.1 methodology) and
// stores them as multi-graph LG files for reproducible experiments.
//
// Usage:
//
//	psi-workload -dataset cora -sizes 4-10 -count 100 -out queries.lg
//	psi-workload -graph g.lg -sizes 5 -count 50 -seed 7 -out q.lg
//	psi-workload -dataset cora -sizes 4-6 -count 10 -evaluate \
//	             -debug-addr 127.0.0.1:6060
//
// With -evaluate, the extracted queries are also run through the
// SmartPSI engine (useful with -debug-addr to watch live /metrics and
// /tracez while a workload executes). -debug-addr starts the obs debug
// HTTP server (metrics + traces + pprof) and implies metric collection.
//
// With -shadow-rate > 0 the engine additionally audits that fraction of
// its model decisions by shadow scoring (see /modelz), and -decision-log
// captures one JSONL record per audited decision for offline analysis
// with psi-decisions:
//
//	psi-workload -dataset cora -sizes 4-6 -count 10 -evaluate \
//	             -shadow-rate 0.05 -decision-log decisions.jsonl
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	repro "repro"
	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	graphPath := flag.String("graph", "", "data graph file (LG format)")
	dataset := flag.String("dataset", "", "built-in dataset name (alternative to -graph)")
	sizes := flag.String("sizes", "4-10", "query sizes: N or LO-HI")
	count := flag.Int("count", 100, "queries per size")
	seed := flag.Int64("seed", 42, "extraction seed")
	out := flag.String("out", "", "output file (empty: stdout)")
	evaluate := flag.Bool("evaluate", false, "also evaluate the extracted queries with SmartPSI")
	threads := flag.Int("threads", 1, "evaluation workers (with -evaluate)")
	debugAddr := flag.String("debug-addr", "", "serve obs debug HTTP (metrics, traces, pprof) on this address")
	shadowRate := flag.Float64("shadow-rate", 0, "model-decision audit sampling rate in [0,1] (with -evaluate; 0 disables shadow scoring)")
	planShadowRate := flag.Float64("plan-shadow-rate", 0, "model-β plan-audit sampling rate (0: shadow-rate/4)")
	decisionLog := flag.String("decision-log", "", "capture audited decisions as JSONL to this file (with -evaluate; analyze with psi-decisions)")
	decisionLogCap := flag.Int64("decision-log-cap", 0, "max decision records (0: default cap)")
	flag.Parse()

	if *debugAddr != "" {
		addr, closeFn, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psi-workload:", err)
			os.Exit(1)
		}
		defer func() {
			if err := closeFn(); err != nil {
				fmt.Fprintln(os.Stderr, "psi-workload: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics /tracez /debug/pprof)\n", addr)
	}

	audit := auditOptions{
		shadowRate:     *shadowRate,
		planShadowRate: *planShadowRate,
		decisionLog:    *decisionLog,
		decisionLogCap: *decisionLogCap,
	}
	if err := run(*graphPath, *dataset, *sizes, *count, *seed, *out, *evaluate, *threads, audit); err != nil {
		fmt.Fprintln(os.Stderr, "psi-workload:", err)
		os.Exit(1)
	}
}

// auditOptions carries the model-decision audit flags to the evaluator.
type auditOptions struct {
	shadowRate     float64
	planShadowRate float64
	decisionLog    string
	decisionLogCap int64
}

func run(graphPath, dataset, sizes string, count int, seed int64, out string, evaluate bool, threads int, audit auditOptions) error {
	lo, hi, err := parseSizes(sizes)
	if err != nil {
		return err
	}
	var g *graph.Graph
	switch {
	case graphPath != "":
		g, err = repro.LoadGraph(graphPath)
	case dataset != "":
		g, err = repro.GenerateDataset(dataset)
	default:
		return fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	var queries []graph.Query
	for size := lo; size <= hi; size++ {
		qs, err := repro.ExtractQueries(g, size, count, rng)
		if err != nil {
			return fmt.Errorf("size %d: %w", size, err)
		}
		queries = append(queries, qs...)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteQuerySetLG(w, queries); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "extracted %d queries (sizes %d-%d, %d per size)\n",
		len(queries), lo, hi, count)
	if evaluate {
		return evaluateQueries(g, queries, threads, seed, audit)
	}
	return nil
}

// evaluateQueries runs every extracted query through the SmartPSI
// engine. With collection enabled (-debug-addr or PSI_OBS) each query
// feeds the obs registry and tracer as it executes; with a shadow rate
// set, sampled model decisions are audited (regret shows up on /modelz)
// and optionally captured to a JSONL decision log.
func evaluateQueries(g *graph.Graph, queries []graph.Query, threads int, seed int64, audit auditOptions) error {
	opts := repro.Options{
		Threads:        threads,
		Seed:           seed,
		ShadowRate:     audit.shadowRate,
		PlanShadowRate: audit.planShadowRate,
	}
	var dlog *obs.DecisionLog
	if audit.decisionLog != "" {
		var err error
		dlog, err = obs.CreateDecisionLog(audit.decisionLog, audit.decisionLogCap)
		if err != nil {
			return err
		}
		opts.DecisionLog = dlog
	}
	engine, err := repro.NewEngine(g, opts)
	if err != nil {
		return err
	}
	var bindings, work, shadowRuns int64
	var regret time.Duration
	for i, q := range queries {
		res, err := engine.Evaluate(q)
		if err != nil {
			return fmt.Errorf("evaluating query %d: %w", i, err)
		}
		bindings += int64(len(res.Bindings))
		work += res.Work.Recursions
		shadowRuns += res.ShadowModeRuns + res.ShadowPlanRuns
		regret += res.Regret
	}
	fmt.Fprintf(os.Stderr, "evaluated %d queries: %d pivot bindings, %d recursions\n",
		len(queries), bindings, work)
	if shadowRuns > 0 {
		fmt.Fprintf(os.Stderr, "shadow audits: %d runs, total regret %s\n", shadowRuns, regret)
	}
	if dlog != nil {
		if err := dlog.Close(); err != nil {
			return fmt.Errorf("decision log: %w", err)
		}
		fmt.Fprintf(os.Stderr, "decision log: %d records written, %d dropped -> %s\n",
			dlog.Written(), dlog.Dropped(), audit.decisionLog)
	}
	return nil
}

func parseSizes(s string) (lo, hi int, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		lo, err = strconv.Atoi(s[:i])
		if err != nil {
			return 0, 0, fmt.Errorf("bad sizes %q", s)
		}
		hi, err = strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("bad sizes %q", s)
		}
	} else {
		lo, err = strconv.Atoi(s)
		if err != nil {
			return 0, 0, fmt.Errorf("bad sizes %q", s)
		}
		hi = lo
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("bad size range %d-%d", lo, hi)
	}
	return lo, hi, nil
}
