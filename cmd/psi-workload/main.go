// Command psi-workload extracts query workloads from a data graph by
// random walk with restart (the paper's Section 5.1 methodology) and
// stores them as multi-graph LG files for reproducible experiments.
//
// Usage:
//
//	psi-workload -dataset cora -sizes 4-10 -count 100 -out queries.lg
//	psi-workload -graph g.lg -sizes 5 -count 50 -seed 7 -out q.lg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/graph"
)

func main() {
	graphPath := flag.String("graph", "", "data graph file (LG format)")
	dataset := flag.String("dataset", "", "built-in dataset name (alternative to -graph)")
	sizes := flag.String("sizes", "4-10", "query sizes: N or LO-HI")
	count := flag.Int("count", 100, "queries per size")
	seed := flag.Int64("seed", 42, "extraction seed")
	out := flag.String("out", "", "output file (empty: stdout)")
	flag.Parse()

	if err := run(*graphPath, *dataset, *sizes, *count, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "psi-workload:", err)
		os.Exit(1)
	}
}

func run(graphPath, dataset, sizes string, count int, seed int64, out string) error {
	lo, hi, err := parseSizes(sizes)
	if err != nil {
		return err
	}
	var g *graph.Graph
	switch {
	case graphPath != "":
		g, err = repro.LoadGraph(graphPath)
	case dataset != "":
		g, err = repro.GenerateDataset(dataset)
	default:
		return fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	var queries []graph.Query
	for size := lo; size <= hi; size++ {
		qs, err := repro.ExtractQueries(g, size, count, rng)
		if err != nil {
			return fmt.Errorf("size %d: %w", size, err)
		}
		queries = append(queries, qs...)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteQuerySetLG(w, queries); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "extracted %d queries (sizes %d-%d, %d per size)\n",
		len(queries), lo, hi, count)
	return nil
}

func parseSizes(s string) (lo, hi int, err error) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		lo, err = strconv.Atoi(s[:i])
		if err != nil {
			return 0, 0, fmt.Errorf("bad sizes %q", s)
		}
		hi, err = strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("bad sizes %q", s)
		}
	} else {
		lo, err = strconv.Atoi(s)
		if err != nil {
			return 0, 0, fmt.Errorf("bad sizes %q", s)
		}
		hi = lo
	}
	if lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("bad size range %d-%d", lo, hi)
	}
	return lo, hi, nil
}
