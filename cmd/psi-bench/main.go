// Command psi-bench regenerates the paper's evaluation tables and
// figures over the synthetic Table 3 datasets.
//
// Usage:
//
//	psi-bench [-exp all|table1|table2|table3|fig7|fig8|fig9|fig10|fig11|table4|fig12|models]
//	          [-quick] [-scale N] [-seed S] [-list] [-json FILE]
//	          [-debug-addr HOST:PORT]
//
// -quick shrinks the sweep for a fast sanity run; -scale further divides
// every dataset's size (useful on small machines). Output is aligned
// text, one table per experiment, with ">"-prefixed cells marking runs
// censored by the time budget (the stand-in for the paper's 24-hour task
// limit).
//
// -json FILE additionally writes a machine-readable results document:
// the schema version, the run configuration, and a "metrics" key holding
// the final obs registry snapshot (recursion/prune/cache/recovery
// counters and latency histograms). It implies metric collection.
// -debug-addr serves the same data live over HTTP while the benchmark
// runs.
//
// -baseline FILE -compare [-tolerance F] turns the run into a
// regression gate: after the suite finishes, the work counters are
// diffed against the committed baseline document (see BENCH_seed.json
// and the bench-regression CI job) and the process exits non-zero when
// any gated counter grew past the tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// reportSchema versions the -json results document. -compare refuses
// baselines with a different schema so stale documents cannot silently
// gate against reinterpreted metrics.
const reportSchema = 1

// report is the schema of the -json results document.
type report struct {
	Schema         int          `json:"schema"`
	Experiment     string       `json:"experiment"`
	Quick          bool         `json:"quick"`
	Scale          int          `json:"scale"`
	Seed           int64        `json:"seed"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Metrics        obs.Snapshot `json:"metrics"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	quick := flag.Bool("quick", false, "use the fast configuration")
	scale := flag.Int("scale", 1, "extra dataset scale divisor")
	seed := flag.Int64("seed", 42, "workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.String("json", "", "write results JSON (config + obs metrics snapshot) to this file")
	debugAddr := flag.String("debug-addr", "", "serve obs debug HTTP (metrics, traces, pprof) on this address")
	baselinePath := flag.String("baseline", "", "baseline results JSON to compare against (with -compare)")
	compare := flag.Bool("compare", false, "diff this run's counters against -baseline; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative counter growth before -compare fails")
	flag.Parse()
	bench.SetCSVMode(*csvOut)

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	if *debugAddr != "" {
		addr, closeFn, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psi-bench:", err)
			os.Exit(1)
		}
		defer func() {
			if err := closeFn(); err != nil {
				fmt.Fprintln(os.Stderr, "psi-bench: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics /tracez /profilez /debug/pprof)\n", addr)
	}
	if *compare && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "psi-bench: -compare requires -baseline FILE")
		os.Exit(2)
	}
	if *jsonOut != "" || *compare {
		obs.Enable(true) // the snapshot is useless without collection
	}

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	env := bench.NewEnv(*scale, *seed)

	start := time.Now()
	var err error
	if *exp == "all" {
		err = bench.RunAll(env, cfg, os.Stdout)
	} else {
		var e bench.Experiment
		if e, err = bench.Lookup(*exp); err == nil {
			err = e.Run(env, cfg, os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "psi-bench:", err)
		os.Exit(1)
	}
	rep := buildReport(*exp, *quick, *scale, *seed, time.Since(start))
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "psi-bench:", err)
			os.Exit(1)
		}
	}
	if *compare {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psi-bench:", err)
			os.Exit(2)
		}
		regressed, err := compareReports(os.Stdout, base, &rep, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psi-bench:", err)
			os.Exit(2)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "psi-bench: %d counter(s) regressed past %.0f%% of baseline %s: %v\n",
				len(regressed), *tolerance*100, *baselinePath, regressed)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "psi-bench: no regressions against %s (tolerance %.0f%%)\n", *baselinePath, *tolerance*100)
	}
}

// buildReport captures the run configuration and the final metrics
// snapshot.
func buildReport(exp string, quick bool, scale int, seed int64, elapsed time.Duration) report {
	return report{
		Schema:         reportSchema,
		Experiment:     exp,
		Quick:          quick,
		Scale:          scale,
		Seed:           seed,
		ElapsedSeconds: elapsed.Seconds(),
		Metrics:        obs.Default.Snapshot(),
	}
}

// writeReport emits the results JSON document.
func writeReport(path string, r report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
