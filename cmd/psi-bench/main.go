// Command psi-bench regenerates the paper's evaluation tables and
// figures over the synthetic Table 3 datasets.
//
// Usage:
//
//	psi-bench [-exp all|table1|table2|table3|fig7|fig8|fig9|fig10|fig11|table4|fig12|models]
//	          [-quick] [-scale N] [-seed S] [-list]
//
// -quick shrinks the sweep for a fast sanity run; -scale further divides
// every dataset's size (useful on small machines). Output is aligned
// text, one table per experiment, with ">"-prefixed cells marking runs
// censored by the time budget (the stand-in for the paper's 24-hour task
// limit).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	quick := flag.Bool("quick", false, "use the fast configuration")
	scale := flag.Int("scale", 1, "extra dataset scale divisor")
	seed := flag.Int64("seed", 42, "workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()
	bench.SetCSVMode(*csvOut)

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := bench.Full()
	if *quick {
		cfg = bench.Quick()
	}
	env := bench.NewEnv(*scale, *seed)

	var err error
	if *exp == "all" {
		err = bench.RunAll(env, cfg, os.Stdout)
	} else {
		var e bench.Experiment
		if e, err = bench.Lookup(*exp); err == nil {
			err = e.Run(env, cfg, os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "psi-bench:", err)
		os.Exit(1)
	}
}
