package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsBenchReportJSON checks the -json results document carries the
// run configuration and the final obs metrics snapshot under "metrics".
func TestObsBenchReportJSON(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)
	obs.PSIRecursions.Add(3)

	path := filepath.Join(t.TempDir(), "results.json")
	if err := writeReport(path, "table1", true, 2, 7, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("results JSON round-trip: %v\n%s", err, data)
	}
	if r.Experiment != "table1" || !r.Quick || r.Scale != 2 || r.Seed != 7 {
		t.Errorf("config = %+v", r)
	}
	if r.ElapsedSeconds != 1.5 {
		t.Errorf("elapsed = %v, want 1.5", r.ElapsedSeconds)
	}
	if _, ok := r.Metrics.Counters["psi_recursions_total"]; !ok {
		t.Error(`"metrics" key missing psi_recursions_total counter`)
	}
	// The raw document must expose the snapshot under the "metrics" key.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["metrics"]; !ok {
		t.Errorf("document keys = %v, want a metrics key", raw)
	}
}
