package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsBenchReportJSON checks the -json results document carries the
// schema version, the run configuration, and the final obs metrics
// snapshot under "metrics".
func TestObsBenchReportJSON(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)
	obs.PSIRecursions.Add(3)

	path := filepath.Join(t.TempDir(), "results.json")
	if err := writeReport(path, buildReport("table1", true, 2, 7, 1500*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("results JSON round-trip: %v\n%s", err, data)
	}
	if r.Schema != reportSchema {
		t.Errorf("schema = %d, want %d", r.Schema, reportSchema)
	}
	if r.Experiment != "table1" || !r.Quick || r.Scale != 2 || r.Seed != 7 {
		t.Errorf("config = %+v", r)
	}
	if r.ElapsedSeconds != 1.5 {
		t.Errorf("elapsed = %v, want 1.5", r.ElapsedSeconds)
	}
	if _, ok := r.Metrics.Counters["psi_recursions_total"]; !ok {
		t.Error(`"metrics" key missing psi_recursions_total counter`)
	}
	// The raw document must expose the snapshot under the "metrics" key
	// and the version under "schema".
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"metrics", "schema"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("document missing %q key; have %v", key, raw)
		}
	}
}

// benchReport builds a synthetic report for the comparison tests.
func benchReport(counters map[string]int64) report {
	return report{
		Schema:         reportSchema,
		Experiment:     "all",
		Quick:          true,
		Scale:          1,
		Seed:           42,
		ElapsedSeconds: 10,
		Metrics:        obs.Snapshot{Counters: counters},
	}
}

// TestObsBenchComparePasses: identical runs produce no regressions, and
// improvements (fewer events) pass the one-sided check.
func TestObsBenchComparePasses(t *testing.T) {
	base := benchReport(map[string]int64{
		"psi_recursions_total": 100000,
		"psi_candidates_total": 500000,
	})
	cur := benchReport(map[string]int64{
		"psi_recursions_total": 100000, // identical
		"psi_candidates_total": 300000, // improvement
	})
	var buf bytes.Buffer
	regressed, err := compareReports(&buf, &base, &cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("regressed = %v, want none\n%s", regressed, buf.String())
	}
	if !strings.Contains(buf.String(), "psi_recursions_total") {
		t.Errorf("comparison table missing counters:\n%s", buf.String())
	}
}

// TestObsBenchCompareFailsOnRegression: a baseline doctored to be 2x
// faster (half the work) must fail the gate.
func TestObsBenchCompareFailsOnRegression(t *testing.T) {
	cur := benchReport(map[string]int64{
		"psi_recursions_total": 100000,
		"psi_candidates_total": 500000,
	})
	doctored := benchReport(map[string]int64{
		"psi_recursions_total": 50000, // current looks 2x worse
		"psi_candidates_total": 250000,
	})
	var buf bytes.Buffer
	regressed, err := compareReports(&buf, &doctored, &cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 2 {
		t.Errorf("regressed = %v, want both counters\n%s", regressed, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("table does not flag the regression:\n%s", buf.String())
	}
}

// TestObsBenchCompareSkips pins the exemptions: volatile counters,
// small baselines, and counters unknown to the baseline never gate.
func TestObsBenchCompareSkips(t *testing.T) {
	base := benchReport(map[string]int64{
		"smartpsi_flips_total":    10,  // volatile: skipped at any size
		"smartpsi_timeouts_total": 500, // volatile
		"fsm_support_calls_total": 50,  // below minBaseCount
	})
	cur := benchReport(map[string]int64{
		"smartpsi_flips_total":    10000,
		"smartpsi_timeouts_total": 10000,
		"fsm_support_calls_total": 99,
		"psi_new_counter_total":   12345, // not in baseline
	})
	var buf bytes.Buffer
	regressed, err := compareReports(&buf, &base, &cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("regressed = %v, want none (all exempt)\n%s", regressed, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"skip (volatile)", "skip (baseline too small)", "new (not in baseline)", "elapsed_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestObsBenchCompareRejects pins the hard errors: schema drift and
// config mismatch.
func TestObsBenchCompareRejects(t *testing.T) {
	dir := t.TempDir()

	stale := benchReport(nil)
	stale.Schema = reportSchema + 1
	data, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("loadBaseline(stale schema) = %v, want schema error", err)
	}
	if _, err := loadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loadBaseline(missing file) succeeded")
	}

	base := benchReport(map[string]int64{"psi_recursions_total": 1000})
	cur := benchReport(map[string]int64{"psi_recursions_total": 1000})
	cur.Seed = 7
	var buf bytes.Buffer
	if _, err := compareReports(&buf, &base, &cur, 0.15); err == nil || !strings.Contains(err.Error(), "config mismatch") {
		t.Errorf("compareReports(different seed) = %v, want config mismatch error", err)
	}
}
