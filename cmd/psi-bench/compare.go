package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// The benchmark-regression gate diffs one run's obs counter snapshot
// against a committed baseline (BENCH_seed.json). The check is
// deliberately narrow so it stays green on honest runs:
//
//   - Only counters gate. Histograms aggregate latencies whose absolute
//     values are machine-dependent, and elapsed wall time differs
//     between the machine that produced the baseline and the one
//     running CI; both are reported for context but never fail the run.
//   - One-sided: only growth is a regression. Doing *less* work than
//     the baseline (better pruning, better models) is an improvement.
//   - Timing-volatile counters are skipped. Flips, fallbacks, timeouts,
//     deadline/stop aborts and cache hit/miss splits all depend on
//     wall-clock races (the MaxTime budget of Section 4.3), so their
//     run-to-run variance far exceeds any useful tolerance.
//   - Counters below minBaseCount are skipped: a 0→3 jump is noise,
//     not a 15% regression.

// volatileSubstrings marks counters whose values depend on wall-clock
// races rather than algorithmic work; they are exempt from gating.
var volatileSubstrings = []string{
	"timeout", "flip", "fallback", "recover", "deadline", "stop", "cache",
}

// minBaseCount is the smallest baseline value a counter needs before
// the relative tolerance is meaningful.
const minBaseCount = 100

func isVolatile(name string) bool {
	for _, s := range volatileSubstrings {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// loadBaseline reads and validates a baseline results document.
func loadBaseline(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if r.Schema != reportSchema {
		return nil, fmt.Errorf("baseline %s has schema %d, this binary writes schema %d; regenerate it with -json",
			path, r.Schema, reportSchema)
	}
	return &r, nil
}

// compareReports writes a comparison table to w and returns the names
// of the gated counters that grew past tol relative to the baseline.
// A baseline produced by a different run configuration is an error:
// counter magnitudes are only comparable for the same workload.
func compareReports(w io.Writer, base, cur *report, tol float64) ([]string, error) {
	if base.Experiment != cur.Experiment || base.Quick != cur.Quick ||
		base.Scale != cur.Scale || base.Seed != cur.Seed {
		return nil, fmt.Errorf(
			"baseline config mismatch: baseline ran exp=%s quick=%v scale=%d seed=%d, this run exp=%s quick=%v scale=%d seed=%d",
			base.Experiment, base.Quick, base.Scale, base.Seed,
			cur.Experiment, cur.Quick, cur.Scale, cur.Seed)
	}

	names := make([]string, 0, len(base.Metrics.Counters))
	for name := range base.Metrics.Counters {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "benchmark regression check (tolerance %+.0f%%, one-sided)\n", tol*100)
	fmt.Fprintf(&buf, "%-40s  %14s  %14s  %8s  %s\n", "COUNTER", "BASELINE", "CURRENT", "DELTA", "STATUS")
	var regressed []string
	for _, name := range names {
		b := base.Metrics.Counters[name]
		c, ok := cur.Metrics.Counters[name]
		status := "ok"
		delta := "-"
		if !ok {
			status = "skip (absent in this run)"
		} else {
			if b != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*float64(c-b)/float64(b))
			} else if c != 0 {
				delta = "+inf"
			}
			switch {
			case isVolatile(name):
				status = "skip (volatile)"
			case b < minBaseCount:
				status = "skip (baseline too small)"
			case float64(c) > float64(b)*(1+tol):
				status = "REGRESSED"
				regressed = append(regressed, name)
			}
		}
		fmt.Fprintf(&buf, "%-40s  %14d  %14d  %8s  %s\n", name, b, c, delta, status)
	}
	// New counters this binary emits that the baseline predates: listed
	// for visibility, never gated (there is nothing to compare against).
	var added []string
	for name := range cur.Metrics.Counters {
		if _, ok := base.Metrics.Counters[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(&buf, "%-40s  %14s  %14d  %8s  %s\n", name, "-", cur.Metrics.Counters[name], "-", "new (not in baseline)")
	}
	fmt.Fprintf(&buf, "%-40s  %13.1fs  %13.1fs  %8s  %s\n", "elapsed_seconds",
		base.ElapsedSeconds, cur.ElapsedSeconds, "-", "informational (machine-dependent)")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return nil, err
	}
	return regressed, nil
}
