package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// makeBundle assembles a realistic incident bundle on disk: an
// availability alert driven to firing, one slow profile, decision-tail
// and access-log records sharing a request ID (correlated unless
// withCorrelation is false).
func makeBundle(t *testing.T, withCorrelation bool) string {
	t.Helper()
	prev := obs.Enabled()
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(prev) })

	reg := obs.NewRegistry()
	req := reg.Counter("server_requests_total", "requests")
	shed := reg.Counter("server_shed_total", "sheds")
	s := obs.NewSampler(reg, time.Second, 16)
	set := obs.NewSLOSet(s, []obs.Objective{
		obs.AvailabilityObjective(0.9, 2*time.Second, 5*time.Second, 2, 0),
	})
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	s.SampleAt(base)
	req.Add(100)
	shed.Add(50)
	s.SampleAt(base.Add(time.Second)) // availability fires

	rec := obs.NewRecorder(4)
	p := rec.Start("q-slow")
	p.SetRequestID("req-42")
	p.SetMethod("pessimistic")
	p.MergeFunnel(&obs.Funnel{Depths: []obs.FunnelDepth{
		{Generated: 20, DegOK: 15, SigOK: 10, Recursed: 8, Matched: 2},
	}})
	p.SetOutcome(2)
	p.FinishIn(25 * time.Millisecond)

	tail := obs.NewDecisionTail(8)
	reqID := "req-42"
	if !withCorrelation {
		reqID = ""
	}
	tail.Append(obs.DecisionRecord{Kind: obs.DecisionKindMode, Query: "q-slow", RequestID: reqID, Node: 7})

	access := obs.NewAccessRing(8)
	access.Append(obs.AccessEntry{Method: "POST", Path: "/v1/psi", Status: 200, RequestID: "req-42"})

	b, err := obs.NewBundler(obs.BundlerConfig{
		Registry: reg, Sampler: s, Alerts: set,
		Recorder: rec, Decisions: tail, Access: access,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteBundle(&buf, obs.BundleReasonAlert, "availability"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.zip")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportText(t *testing.T) {
	path := makeBundle(t, true)
	var out, errOut bytes.Buffer
	if code := run([]string{"report", path}, &out, &errOut); code != 0 {
		t.Fatalf("report exit = %d, stderr:\n%s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"reason alert", "objective availability", // manifest header
		"FIRING", "availability", // firing section
		"server_requests_total", // sparkline
		"q-slow", "req-42",      // slow profile with its request ID
		"funnel generated 20 > deg-ok 15 > sig-ok 10 > recursed 8 > matched 2",
		"correlated request IDs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
}

func TestReportJSON(t *testing.T) {
	path := makeBundle(t, true)
	var out, errOut bytes.Buffer
	if code := run([]string{"report", "-json", "-require-correlation", path}, &out, &errOut); code != 0 {
		t.Fatalf("report -json exit = %d, stderr:\n%s", code, errOut.String())
	}
	var rep reportDoc
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report -json is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Firing) != 1 || rep.Firing[0].Name != "availability" {
		t.Errorf("firing = %+v, want availability", rep.Firing)
	}
	if rep.Bundle.Reason != obs.BundleReasonAlert {
		t.Errorf("manifest reason = %q, want alert", rep.Bundle.Reason)
	}
	if len(rep.Correlated) == 0 {
		t.Fatal("no correlated request IDs")
	}
	c := rep.Correlated[0]
	if c.RequestID != "req-42" || len(c.Sources) != 3 {
		t.Errorf("correlation = %+v, want req-42 across profile+decision+access", c)
	}
}

func TestRequireCorrelationFails(t *testing.T) {
	path := makeBundle(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{"report", "-require-correlation", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1 when no ID spans profile and decision tail", code)
	}
	if !strings.Contains(errOut.String(), "require-correlation") {
		t.Errorf("stderr does not name the failed assertion:\n%s", errOut.String())
	}
}

func TestCorruptBundleExit2(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.zip")
	if err := os.WriteFile(garbage, []byte("this is not a zip archive"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := makeBundle(t, true)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.zip")
	if err := os.WriteFile(truncated, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	for _, sub := range []string{"report", "list"} {
		for _, path := range []string{garbage, truncated, filepath.Join(dir, "missing.zip")} {
			var out, errOut bytes.Buffer
			if code := run([]string{sub, path}, &out, &errOut); code != 2 {
				t.Errorf("%s %s exit = %d, want 2\n%s", sub, filepath.Base(path), code, errOut.String())
			}
		}
	}
}

func TestListAndCat(t *testing.T) {
	path := makeBundle(t, true)
	var out, errOut bytes.Buffer
	if code := run([]string{"list", path}, &out, &errOut); code != 0 {
		t.Fatalf("list exit = %d\n%s", code, errOut.String())
	}
	for _, want := range []string{obs.ManifestEntry, obs.MetricsEntry, obs.AlertsEntry, obs.GoroutinesEntry} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list lacks %s:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"cat", path, obs.ManifestEntry}, &out, &errOut); code != 0 {
		t.Fatalf("cat exit = %d\n%s", code, errOut.String())
	}
	var man obs.BundleManifest
	if err := json.Unmarshal(out.Bytes(), &man); err != nil {
		t.Fatalf("cat manifest.json is not JSON: %v", err)
	}
	if man.Objective != "availability" {
		t.Errorf("manifest objective = %q, want availability", man.Objective)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"cat", path, "no-such-entry"}, &out, &errOut); code != 1 {
		t.Errorf("cat missing entry exit = %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 1 {
		t.Errorf("no args exit = %d, want 1", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errOut); code != 1 {
		t.Errorf("unknown subcommand exit = %d, want 1", code)
	}
	if code := run([]string{"help"}, &out, &errOut); code != 0 {
		t.Errorf("help exit = %d, want 0", code)
	}
}
