// Command psi-bundle inspects diagnostic bundles captured by psi-serve
// (auto-captured to -bundle-dir when an SLO alert fires, pulled
// manually from /debugz/bundle, or saved by psi-loadgen
// -bundle-on-fail). It turns the zip of JSON snapshots into a readable
// incident report: what was firing, how fast the error budget was
// burning, what the serving and process-health series looked like
// leading up to capture, which requests were slow, and which request
// IDs can be followed across the profile, decision-log, and access-log
// views of the same incident.
//
// Usage:
//
//	psi-bundle report bundle.zip                 # text incident report
//	psi-bundle report -json bundle.zip           # machine-readable report
//	psi-bundle report -require-correlation b.zip # fail unless >= 1 request
//	                                             # ID appears in both a
//	                                             # profile and the decision
//	                                             # tail (CI gate)
//	psi-bundle list bundle.zip                   # entries with sizes
//	psi-bundle cat bundle.zip manifest.json      # raw entry to stdout
//
// Exit status: 0 on success, 1 on usage errors or failed assertions
// (-require-correlation), 2 when the bundle is corrupt, truncated, or
// has an unsupported schema — distinct so CI can tell "the incident
// data is bad" from "the incident data disproves the assertion".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes, per the package doc.
const (
	exitOK      = 0
	exitFail    = 1 // usage error or failed assertion
	exitCorrupt = 2 // unreadable / truncated / wrong-schema bundle
)

// run is the testable entry point: parses the subcommand and
// dispatches. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return exitFail
	}
	switch args[0] {
	case "report":
		return cmdReport(args[1:], stdout, stderr)
	case "list":
		return cmdList(args[1:], stdout, stderr)
	case "cat":
		return cmdCat(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return exitOK
	default:
		_, _ = fmt.Fprintf(stderr, "psi-bundle: unknown subcommand %q\n", args[0])
		usage(stderr)
		return exitFail
	}
}

func usage(w io.Writer) {
	_, _ = fmt.Fprint(w, `usage:
  psi-bundle report [-json] [-require-correlation] BUNDLE.zip
  psi-bundle list BUNDLE.zip
  psi-bundle cat BUNDLE.zip ENTRY

exit: 0 ok, 1 usage/assertion failure, 2 corrupt or unreadable bundle
`)
}

// open reads and validates the bundle, mapping read failures to the
// corrupt exit code.
func open(path string, stderr io.Writer) (*obs.BundleArchive, int) {
	a, err := obs.ReadBundleFile(path)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "psi-bundle: %s: %v\n", path, err)
		return nil, exitCorrupt
	}
	return a, exitOK
}

// cmdList prints the manifest's entry table.
func cmdList(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		_, _ = fmt.Fprintln(stderr, "psi-bundle: list takes exactly one bundle path")
		return exitFail
	}
	a, code := open(args[0], stderr)
	if code != exitOK {
		return code
	}
	names := make([]string, 0, len(a.Entries))
	for name := range a.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	_, _ = fmt.Fprintf(stdout, "%s  schema %d  reason %s  captured %s\n",
		args[0], a.Manifest.Schema, a.Manifest.Reason, a.Manifest.CapturedAt.Format(time.RFC3339))
	for _, name := range names {
		_, _ = fmt.Fprintf(stdout, "  %9d  %s\n", len(a.Entries[name]), name)
	}
	return exitOK
}

// cmdCat writes one raw entry to stdout (for piping into jq or
// jsoncheck).
func cmdCat(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		_, _ = fmt.Fprintln(stderr, "psi-bundle: cat takes a bundle path and an entry name")
		return exitFail
	}
	a, code := open(args[0], stderr)
	if code != exitOK {
		return code
	}
	data, err := a.Entry(args[1])
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "psi-bundle: %v\n", err)
		return exitFail
	}
	_, _ = stdout.(io.Writer).Write(data)
	return exitOK
}

// cmdReport renders the incident report.
func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as a JSON document")
	requireCorr := fs.Bool("require-correlation", false,
		"exit 1 unless at least one request ID appears in both a captured profile and the decision-log tail")
	if err := fs.Parse(args); err != nil {
		return exitFail
	}
	if fs.NArg() != 1 {
		_, _ = fmt.Fprintln(stderr, "psi-bundle: report takes exactly one bundle path")
		return exitFail
	}
	a, code := open(fs.Arg(0), stderr)
	if code != exitOK {
		return code
	}
	rep, err := buildReport(a)
	if err != nil {
		_, _ = fmt.Fprintf(stderr, "psi-bundle: %s: %v\n", fs.Arg(0), err)
		return exitCorrupt
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			_, _ = fmt.Fprintf(stderr, "psi-bundle: %v\n", err)
			return exitFail
		}
	} else {
		writeText(stdout, rep)
	}
	if *requireCorr && !hasProfileDecisionCorrelation(rep) {
		_, _ = fmt.Fprintln(stderr, "psi-bundle: -require-correlation: no request ID appears in both a captured profile and the decision-log tail")
		return exitFail
	}
	return exitOK
}

// hasProfileDecisionCorrelation reports whether any request ID spans
// the serving view (a captured profile) and the model-audit view (the
// decision-log tail) — the pairing -require-correlation gates on.
// Access-log pairings alone do not satisfy it.
func hasProfileDecisionCorrelation(rep *reportDoc) bool {
	for _, c := range rep.Correlated {
		var prof, dec bool
		for _, s := range c.Sources {
			prof = prof || s == "profile"
			dec = dec || s == "decision"
		}
		if prof && dec {
			return true
		}
	}
	return false
}

// reportDoc is the -json report document and the input of the text
// renderer.
type reportDoc struct {
	Schema     int                `json:"schema"`
	Bundle     obs.BundleManifest `json:"manifest"`
	Firing     []obs.AlertStatus  `json:"firing"`
	Alerts     []obs.AlertStatus  `json:"alerts"`
	Series     []seriesLine       `json:"series,omitempty"`
	Slowest    []profileLine      `json:"slowest,omitempty"`
	Workload   *workloadSummary   `json:"workload,omitempty"`
	Decisions  decisionSummary    `json:"decisions"`
	AccessIDs  int                `json:"access_request_ids"`
	Correlated []correlation      `json:"correlated_request_ids"`
}

// seriesLine is one rendered sparkline: a metric's recent trajectory.
type seriesLine struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "rate", "value", "p99"
	Last  float64 `json:"last"`
	Spark string  `json:"spark"`
}

// profileLine summarizes one slow profile with its candidate funnel
// totals.
type profileLine struct {
	Name       string  `json:"name"`
	RequestID  string  `json:"request_id,omitempty"`
	Method     string  `json:"method"`
	DurationMS float64 `json:"duration_ms"`
	Bindings   int     `json:"bindings"`
	Generated  int64   `json:"generated"`
	DegOK      int64   `json:"deg_ok"`
	SigOK      int64   `json:"sig_ok"`
	Recursed   int64   `json:"recursed"`
	Matched    int64   `json:"matched"`
}

// workloadSummary condenses the bundle's workload.json (the /queryz
// snapshot at capture time) into the shapes that were costing the most
// when the incident fired.
type workloadSummary struct {
	Observed     int64          `json:"observed"`
	Tracked      int            `json:"tracked_shapes"`
	DistinctEst  int64          `json:"distinct_shapes_estimate"`
	CacheWinPct  float64        `json:"cache_win_upper_bound_pct"`
	SavableNanos int64          `json:"savable_nanos"`
	TopShapes    []workloadLine `json:"top_shapes,omitempty"`
}

// workloadLine is one top-cost shape row of the report.
type workloadLine struct {
	Fingerprint string  `json:"shape"`
	Example     string  `json:"example,omitempty"`
	Count       int64   `json:"count"`
	CountPct    float64 `json:"count_pct"`
	CostPct     float64 `json:"cost_pct"`
	P95MS       float64 `json:"p95_ms"`
	RepeatHits  int64   `json:"repeat_hits"`
	Shed        int64   `json:"shed"`
	Deadline    int64   `json:"deadline"`
}

// decisionSummary aggregates the decision-log tail.
type decisionSummary struct {
	Records    int              `json:"records"`
	Kinds      map[string]int64 `json:"kinds,omitempty"`
	RequestIDs int              `json:"request_ids"`
}

// correlation is one request ID visible from more than one telemetry
// surface, with the surfaces that saw it.
type correlation struct {
	RequestID string   `json:"request_id"`
	Sources   []string `json:"sources"` // subset of profile, decision, access
}

// buildReport decodes the bundle's JSON entries into the report
// document. A bundle whose mandatory JSON entries do not parse is
// treated as corrupt by the caller.
func buildReport(a *obs.BundleArchive) (*reportDoc, error) {
	rep := &reportDoc{Schema: 1, Bundle: a.Manifest}

	var alerts obs.AlertsData
	if data, err := a.Entry(obs.AlertsEntry); err == nil {
		if err := json.Unmarshal(data, &alerts); err != nil {
			return nil, fmt.Errorf("%s: %w", obs.AlertsEntry, err)
		}
		rep.Alerts = alerts.Alerts
		for _, al := range alerts.Alerts {
			if al.State == obs.StateFiring {
				rep.Firing = append(rep.Firing, al)
			}
		}
	}

	if data, err := a.Entry(obs.SeriesEntry); err == nil {
		var series obs.SeriesData
		if err := json.Unmarshal(data, &series); err != nil {
			return nil, fmt.Errorf("%s: %w", obs.SeriesEntry, err)
		}
		rep.Series = renderSeries(series)
	}

	var profiles obs.BundleProfiles
	if data, err := a.Entry(obs.ProfilesEntry); err == nil {
		if err := json.Unmarshal(data, &profiles); err != nil {
			return nil, fmt.Errorf("%s: %w", obs.ProfilesEntry, err)
		}
		for _, p := range profiles.Slowest {
			rep.Slowest = append(rep.Slowest, profileToLine(p))
		}
	}

	if data, err := a.Entry(obs.WorkloadEntry); err == nil {
		var wl obs.WorkloadData
		if err := json.Unmarshal(data, &wl); err != nil {
			return nil, fmt.Errorf("%s: %w", obs.WorkloadEntry, err)
		}
		rep.Workload = summarizeWorkload(wl)
	}

	decisions, err := decodeJSONL[obs.DecisionRecord](a, obs.DecisionsEntry)
	if err != nil {
		return nil, err
	}
	rep.Decisions = summarizeDecisions(decisions)

	access, err := decodeJSONL[obs.AccessEntry](a, obs.AccessLogEntryName)
	if err != nil {
		return nil, err
	}

	rep.Correlated, rep.AccessIDs = correlate(profiles, decisions, access)
	return rep, nil
}

// decodeJSONL parses an optional JSONL entry; a missing entry is an
// empty slice, a malformed line is an error.
func decodeJSONL[T any](a *obs.BundleArchive, name string) ([]T, error) {
	data, err := a.Entry(name)
	if err != nil {
		return nil, nil
	}
	var out []T
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var v T
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", name, i+1, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// seriesOfInterest picks which metrics get sparklines, in render
// order: serving traffic and its failure modes, then process health.
var seriesOfInterest = []string{
	"server_requests_total",
	"server_shed_total",
	"server_deadline_hits_total",
	"server_drain_rejects_total",
	"server_panics_total",
	"process_goroutines",
	"process_heap_inuse_bytes",
}

// renderSeries turns the bundle's ring snapshots into sparklines for
// the metrics worth eyeballing during an incident. Metrics absent from
// the rings are skipped.
func renderSeries(s obs.SeriesData) []seriesLine {
	counters := make(map[string]obs.CounterSeries, len(s.Counters))
	for _, c := range s.Counters {
		counters[c.Name] = c
	}
	gauges := make(map[string]obs.GaugeSeries, len(s.Gauges))
	for _, g := range s.Gauges {
		gauges[g.Name] = g
	}
	var out []seriesLine
	for _, name := range seriesOfInterest {
		if c, ok := counters[name]; ok && len(c.Rates) > 0 {
			out = append(out, seriesLine{
				Name: name, Kind: "rate",
				Last:  c.Rates[len(c.Rates)-1],
				Spark: obs.Spark(c.Rates),
			})
			continue
		}
		if g, ok := gauges[name]; ok && len(g.Values) > 0 {
			vals := make([]float64, len(g.Values))
			for i, v := range g.Values {
				vals[i] = float64(v)
			}
			out = append(out, seriesLine{
				Name: name, Kind: "value",
				Last:  vals[len(vals)-1],
				Spark: obs.Spark(vals),
			})
		}
	}
	for _, h := range s.Histograms {
		if h.Name == "server_psi_seconds" && len(h.P99) > 0 {
			out = append(out, seriesLine{
				Name: h.Name + "_p99", Kind: "p99",
				Last:  h.P99[len(h.P99)-1],
				Spark: obs.Spark(h.P99),
			})
		}
	}
	return out
}

// profileToLine flattens one profile and its funnel totals.
func profileToLine(p obs.ProfileData) profileLine {
	l := profileLine{
		Name:       p.Name,
		RequestID:  p.RequestID,
		Method:     p.Method,
		DurationMS: float64(p.DurationNanos) / 1e6,
		Bindings:   p.Bindings,
	}
	for _, d := range p.Funnel {
		l.Generated += d.Generated
		l.DegOK += d.DegOK
		l.SigOK += d.SigOK
		l.Recursed += d.Recursed
		l.Matched += d.Matched
	}
	return l
}

// summarizeWorkload keeps the top-cost shapes (the snapshot is already
// ranked by aggregate cost) plus the sketch-wide cache-win estimate.
func summarizeWorkload(wl obs.WorkloadData) *workloadSummary {
	sum := &workloadSummary{
		Observed:     wl.Observed,
		Tracked:      wl.TrackedShapes,
		DistinctEst:  wl.DistinctEstimate,
		CacheWinPct:  wl.CacheWin.HitRate * 100,
		SavableNanos: wl.CacheWin.SavableNanos,
	}
	top := wl.Shapes
	if len(top) > 5 {
		top = top[:5]
	}
	for _, s := range top {
		sum.TopShapes = append(sum.TopShapes, workloadLine{
			Fingerprint: s.Fingerprint,
			Example:     s.Example,
			Count:       s.Count,
			CountPct:    s.CountShare * 100,
			CostPct:     s.CostShare * 100,
			P95MS:       s.P95Millis,
			RepeatHits:  s.Totals.RepeatHits,
			Shed:        s.Totals.Shed,
			Deadline:    s.Totals.Deadline,
		})
	}
	return sum
}

// summarizeDecisions aggregates the tail by kind and distinct request
// ID.
func summarizeDecisions(recs []obs.DecisionRecord) decisionSummary {
	sum := decisionSummary{Records: len(recs)}
	ids := map[string]bool{}
	for _, r := range recs {
		if sum.Kinds == nil {
			sum.Kinds = map[string]int64{}
		}
		sum.Kinds[r.Kind]++
		if r.RequestID != "" {
			ids[r.RequestID] = true
		}
	}
	sum.RequestIDs = len(ids)
	return sum
}

// correlate intersects request IDs across the three telemetry
// surfaces. Only IDs seen by at least two surfaces are reported —
// those are the requests an operator can follow end to end. Also
// returns the count of distinct IDs in the access log.
func correlate(profiles obs.BundleProfiles, decisions []obs.DecisionRecord, access []obs.AccessEntry) ([]correlation, int) {
	const (
		srcProfile = 1 << iota
		srcDecision
		srcAccess
	)
	seen := map[string]int{}
	for _, p := range profiles.Slowest {
		if p.RequestID != "" {
			seen[p.RequestID] |= srcProfile
		}
	}
	for _, p := range profiles.Recent {
		if p.RequestID != "" {
			seen[p.RequestID] |= srcProfile
		}
	}
	for _, d := range decisions {
		if d.RequestID != "" {
			seen[d.RequestID] |= srcDecision
		}
	}
	accessIDs := map[string]bool{}
	for _, e := range access {
		if e.RequestID != "" {
			seen[e.RequestID] |= srcAccess
			accessIDs[e.RequestID] = true
		}
	}
	var out []correlation
	for id, mask := range seen {
		var sources []string
		if mask&srcProfile != 0 {
			sources = append(sources, "profile")
		}
		if mask&srcDecision != 0 {
			sources = append(sources, "decision")
		}
		if mask&srcAccess != 0 {
			sources = append(sources, "access")
		}
		// The correlation that matters is profile+decision: the serving
		// view and the model-audit view of the same request. Access-only
		// pairings are still reported, ranked after.
		if mask&srcProfile != 0 && mask&srcDecision != 0 {
			out = append(out, correlation{RequestID: id, Sources: sources})
		} else if len(sources) >= 2 {
			out = append(out, correlation{RequestID: id, Sources: sources})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := len(out[i].Sources), len(out[j].Sources)
		if li != lj {
			return li > lj
		}
		return out[i].RequestID < out[j].RequestID
	})
	return out, len(accessIDs)
}

// writeText renders the human-readable incident report. Write errors
// on the report stream are not actionable and are discarded.
func writeText(w io.Writer, rep *reportDoc) {
	m := rep.Bundle
	_, _ = fmt.Fprintf(w, "incident bundle  schema %d  reason %s", m.Schema, m.Reason)
	if m.Objective != "" {
		_, _ = fmt.Fprintf(w, "  objective %s", m.Objective)
	}
	_, _ = fmt.Fprintln(w)
	_, _ = fmt.Fprintf(w, "captured %s  uptime %.1fs  pid %d  host %s\n",
		m.CapturedAt.Format(time.RFC3339), m.UptimeSeconds, m.PID, m.Hostname)
	_, _ = fmt.Fprintf(w, "%s %s/%s  gomaxprocs %d", m.GoVersion, m.GOOS, m.GOARCH, m.GOMAXPROCS)
	if m.VCSRevision != "" {
		rev := m.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		_, _ = fmt.Fprintf(w, "  rev %s", rev)
		if m.VCSModified {
			_, _ = fmt.Fprint(w, "+dirty")
		}
	}
	_, _ = fmt.Fprintln(w)

	if len(rep.Firing) > 0 {
		_, _ = fmt.Fprintln(w, "\nFIRING")
		for _, al := range rep.Firing {
			_, _ = fmt.Fprintf(w, "  %-16s burn fast %.2fx slow %.2fx (threshold %.1fx, target %.4g)\n",
				al.Name, al.FastBurn, al.SlowBurn, al.BurnFactor, al.Target)
		}
	}
	if len(rep.Alerts) > 0 {
		_, _ = fmt.Fprintln(w, "\nalerts")
		for _, al := range rep.Alerts {
			_, _ = fmt.Fprintf(w, "  %-16s %-8s fast %.2fx slow %.2fx\n", al.Name, al.State, al.FastBurn, al.SlowBurn)
		}
	}

	if len(rep.Series) > 0 {
		_, _ = fmt.Fprintln(w, "\nseries (oldest -> newest)")
		for _, s := range rep.Series {
			_, _ = fmt.Fprintf(w, "  %-28s %-5s %s  last %.4g\n", s.Name, s.Kind, s.Spark, s.Last)
		}
	}

	if len(rep.Slowest) > 0 {
		_, _ = fmt.Fprintln(w, "\nslowest profiles")
		for _, p := range rep.Slowest {
			_, _ = fmt.Fprintf(w, "  %8.2fms  %-10s %s", p.DurationMS, p.Method, p.Name)
			if p.RequestID != "" {
				_, _ = fmt.Fprintf(w, "  req %s", p.RequestID)
			}
			_, _ = fmt.Fprintln(w)
			_, _ = fmt.Fprintf(w, "             funnel generated %d > deg-ok %d > sig-ok %d > recursed %d > matched %d; bindings %d\n",
				p.Generated, p.DegOK, p.SigOK, p.Recursed, p.Matched, p.Bindings)
		}
	}

	if rep.Workload != nil {
		_, _ = fmt.Fprintf(w, "\ntop shapes by cost (workload: %d observed, %d tracked, ~%d distinct; answer-cache win <= %.1f%%, savable %s)\n",
			rep.Workload.Observed, rep.Workload.Tracked, rep.Workload.DistinctEst,
			rep.Workload.CacheWinPct, time.Duration(rep.Workload.SavableNanos).Round(time.Millisecond))
		for _, s := range rep.Workload.TopShapes {
			_, _ = fmt.Fprintf(w, "  %s  count %d (%.0f%%)  cost %.0f%%  p95 %.2fms  repeat %d  shed %d  deadline %d",
				s.Fingerprint, s.Count, s.CountPct, s.CostPct, s.P95MS, s.RepeatHits, s.Shed, s.Deadline)
			if s.Example != "" {
				_, _ = fmt.Fprintf(w, "  e.g. %s", s.Example)
			}
			_, _ = fmt.Fprintln(w)
		}
	}

	_, _ = fmt.Fprintf(w, "\ndecision tail: %d records, %d distinct request IDs", rep.Decisions.Records, rep.Decisions.RequestIDs)
	if len(rep.Decisions.Kinds) > 0 {
		kinds := make([]string, 0, len(rep.Decisions.Kinds))
		for k := range rep.Decisions.Kinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%s %d", k, rep.Decisions.Kinds[k])
		}
		_, _ = fmt.Fprintf(w, " (%s)", strings.Join(parts, ", "))
	}
	_, _ = fmt.Fprintln(w)
	_, _ = fmt.Fprintf(w, "access log: %d distinct request IDs\n", rep.AccessIDs)

	if len(rep.Correlated) > 0 {
		_, _ = fmt.Fprintln(w, "\ncorrelated request IDs (followable across surfaces)")
		max := len(rep.Correlated)
		if max > 10 {
			max = 10
		}
		for _, c := range rep.Correlated[:max] {
			_, _ = fmt.Fprintf(w, "  %s  [%s]\n", c.RequestID, strings.Join(c.Sources, "+"))
		}
		if len(rep.Correlated) > max {
			_, _ = fmt.Fprintf(w, "  ... and %d more\n", len(rep.Correlated)-max)
		}
	} else {
		_, _ = fmt.Fprintln(w, "\nno correlated request IDs (run the server with -shadow-rate > 0 to audit decisions per request)")
	}
}
