// Command psi-loadgen drives a running psi-serve instance with a
// workload extracted from the same data graph (random-walk sampling,
// Section 5.1 of the paper) and reports client-side latency
// percentiles, status-code counts, and the server's own metric
// snapshot.
//
// Two driving disciplines:
//
//   - closed loop (-mode closed): -concurrency workers each keep one
//     request in flight, back to back. Measures the server's capacity.
//   - open loop (-mode open): requests are launched on a fixed -qps
//     schedule regardless of completions, the way real clients arrive.
//     Measures behaviour under a load the server does not control.
//
// Usage:
//
//	psi-loadgen -addr 127.0.0.1:8080 -graph g.lg -duration 10s
//	psi-loadgen -addr $A -dataset cora -mode open -qps 200 -duration 5s
//	psi-loadgen -addr $A -graph g.lg -requests 500 -verify -json out.json
//	psi-loadgen -addr $A -graph g.lg -concurrency 32 -require-shed
//	psi-loadgen -addr $A -graph g.lg -skew zipf:1.5 -require-hot-shape
//
// The -json document has the same top-level shape as psi-bench's
// ({"schema":1,...,"metrics":{...}}), with the "metrics" key holding
// the server's /metrics.json snapshot taken after the run, so the same
// tooling can diff either.
//
// Self-asserting flags make the binary usable as a test gate without
// JSON parsing: the exit status is non-zero when any unexpected 5xx
// was seen, when -require-shed saw no 429, when -require-partial saw
// no OK response flagged partial (the degraded-fleet signature), when
// fewer than -min-bindings pivot bindings were returned in total, when
// -verify finds a served binding set that disagrees with a direct
// model-free PSI evaluation of the same query (the mismatch line names
// the query's canonical fingerprint for /queryz and /profilez
// cross-reference), or when a post-run check of the server's /alertz
// fails: -require-alert NAME demands the named SLO alert be firing,
// -forbid-alert NAME demands it not be. With -bundle-on-fail PATH, any
// such failure first saves a diagnostic bundle from the server's
// /debugz/bundle to PATH for post-mortem inspection with psi-bundle.
//
// The query mix is uniform round-robin by default; -skew zipf:<s>
// switches to a Zipfian hot-key mix (query 0 hottest) drawn from a
// deterministic per-request hash, and the summary reports the intended
// vs observed hot-key share. With -require-hot-shape the run fails
// unless the server's /queryz workload sketch ranks a dominant hot
// shape first with a nonzero repeat-exact-hit estimate; the hot
// fingerprint is printed for scripts to chase through
// /profilez?fingerprint= and a bundle's workload.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	repro "repro"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "", "psi-serve address (host:port, required)")
		graphPath   = flag.String("graph", "", "data graph file the server is serving (LG format)")
		dataset     = flag.String("dataset", "", "built-in dataset name (alternative to -graph; must match the server)")
		querySize   = flag.Int("query-size", 4, "nodes per extracted query")
		queries     = flag.Int("queries", 16, "distinct queries to sample and cycle through")
		mode        = flag.String("mode", "closed", "driving discipline: closed or open")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers / open-loop outstanding-request cap")
		qps         = flag.Float64("qps", 100, "open-loop launch rate (requests per second)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load (ignored when -requests > 0)")
		requests    = flag.Int("requests", 0, "total requests to send (0: run for -duration)")
		timeoutMS   = flag.Int64("timeout-ms", 0, "per-request timeout_ms sent to the server (0: server default)")
		batch       = flag.Int("batch", 0, "queries per request via /v1/psi/batch (0: single-query endpoint)")
		seed        = flag.Int64("seed", 1, "workload sampling seed")
		skew        = flag.String("skew", "", "query-mix skew: empty for uniform round-robin, or zipf:<s> for a Zipfian hot-key mix (query 0 hottest, exponent s > 0)")
		jsonPath    = flag.String("json", "", "write a psi-bench-shaped results document to this file")
		verify      = flag.Bool("verify", false, "cross-check every distinct query against a direct model-free PSI evaluation")
		requireShed = flag.Bool("require-shed", false, "fail unless at least one request was load-shed (429)")
		requirePart = flag.Bool("require-partial", false, "fail unless at least one OK response was flagged partial (a sharded fleet answering around a lost shard)")
		requireHot  = flag.Bool("require-hot-shape", false, "fail unless the server's /queryz ranks a dominant hot shape first with a nonzero repeat-hit estimate (use with -skew); prints the hot fingerprint")
		minBindings = flag.Int64("min-bindings", 0, "fail unless OK responses returned at least this many bindings in total")
		requireAl   = flag.String("require-alert", "", "fail unless the named SLO alert is firing at /alertz after the run")
		forbidAl    = flag.String("forbid-alert", "", "fail if the named SLO alert is firing at /alertz after the run")
		bundleOn    = flag.String("bundle-on-fail", "", "when an assertion or verify fails, save a /debugz/bundle diagnostic bundle from the server to this path")
	)
	flag.Parse()
	cfg := config{
		addr: *addr, graphPath: *graphPath, dataset: *dataset,
		querySize: *querySize, queries: *queries,
		mode: *mode, concurrency: *concurrency, qps: *qps,
		duration: *duration, requests: *requests,
		timeoutMS: *timeoutMS, batch: *batch, seed: *seed,
		skew: *skew, jsonPath: *jsonPath, verify: *verify,
		requireShed: *requireShed, requirePartial: *requirePart,
		requireHotShape: *requireHot,
		minBindings:     *minBindings,
		requireAlert:    *requireAl, forbidAlert: *forbidAl,
		bundleOnFail: *bundleOn,
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psi-loadgen:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags into run.
type config struct {
	addr               string
	graphPath, dataset string
	querySize, queries int
	mode               string
	concurrency        int
	qps                float64
	duration           time.Duration
	requests           int
	timeoutMS          int64
	batch              int
	seed               int64
	skew               string
	jsonPath           string
	verify             bool
	requireShed        bool
	requirePartial     bool
	requireHotShape    bool
	minBindings        int64
	requireAlert       string
	forbidAlert        string
	bundleOnFail       string

	// zipfCDF is the cumulative pick distribution over the wire queries
	// when -skew is zipf:<s> (query 0 hottest); empty means uniform
	// round-robin. Populated by run from cfg.skew.
	zipfCDF []float64
}

// report is the -json document: the same top-level shape as
// psi-bench's regression documents, with loadgen's client-side numbers
// alongside the server's metric snapshot.
type report struct {
	Schema         int          `json:"schema"`
	Experiment     string       `json:"experiment"`
	Quick          bool         `json:"quick"`
	Scale          int          `json:"scale"`
	Seed           int64        `json:"seed"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Metrics        obs.Snapshot `json:"metrics"`

	Mode          string  `json:"mode"`
	Skew          string  `json:"skew,omitempty"`
	HotIntended   float64 `json:"hot_share_intended,omitempty"`
	HotObserved   float64 `json:"hot_share_observed,omitempty"`
	Requests      int64   `json:"requests"`
	OK            int64   `json:"ok"`
	Shed          int64   `json:"shed"`
	Deadline      int64   `json:"deadline"`
	ClientErrors  int64   `json:"client_errors"`
	ServerErrors  int64   `json:"server_errors"`
	TransportErrs int64   `json:"transport_errors"`
	Bindings      int64   `json:"bindings"`
	Partials      int64   `json:"partials"`
	AchievedQPS   float64 `json:"achieved_qps"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
}

// latencyMetric is the client-side latency histogram's name in the
// loadgen's private registry.
const latencyMetric = "loadgen_latency_seconds"

// stats accumulates request outcomes across driver goroutines. OK
// latencies land in a client-side histogram (obs.LatencyBuckets) so the
// report's percentiles come from the same bucket-interpolation helper
// the server's /seriesz quantiles use.
type stats struct {
	reg     *obs.Registry
	latency *obs.Histogram // seconds, OK responses only

	mu        sync.Mutex
	picks     int64 // query picks made (batch items count individually)
	hotPicks  int64 // picks of wire[0], the designated hot key
	requests  int64 // queries sent (batch items count individually)
	ok        int64
	shed      int64 // 429
	deadline  int64 // 504
	clientErr int64 // other 4xx
	serverErr int64 // 5xx other than 504 — never expected
	transport int64 // connection-level failures
	bindings  int64
	partials  int64 // OK responses flagged partial (sharded fleet missing a shard)
}

// newStats builds the accumulator with its private metric registry.
func newStats() *stats {
	reg := obs.NewRegistry()
	return &stats{
		reg:     reg,
		latency: reg.Histogram(latencyMetric, "client-side latency of OK responses", obs.LatencyBuckets),
	}
}

// recordPick notes which wire query a request drew, so the report can
// compare the observed hot-key share against the intended Zipfian one.
func (st *stats) recordPick(idx int) {
	st.mu.Lock()
	st.picks++
	if idx == 0 {
		st.hotPicks++
	}
	st.mu.Unlock()
}

// record files one query outcome under the status code conventions of
// internal/server (429 shed, 504 deadline, other 5xx unexpected).
// partial marks an OK response served with the partial flag.
func (st *stats) record(status int, bindings int, partial bool, elapsed time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.requests++
	switch {
	case status == 0:
		st.transport++
	case status == http.StatusOK:
		st.ok++
		st.bindings += int64(bindings)
		if partial {
			st.partials++
		}
		st.latency.Observe(elapsed.Seconds())
	case status == http.StatusTooManyRequests:
		st.shed++
	case status == http.StatusGatewayTimeout:
		st.deadline++
	case status >= 500:
		st.serverErr++
	default:
		st.clientErr++
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.addr == "" {
		return fmt.Errorf("need -addr (the psi-serve address)")
	}
	if cfg.mode != "closed" && cfg.mode != "open" {
		return fmt.Errorf("-mode must be closed or open, got %q", cfg.mode)
	}
	if cfg.concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1")
	}
	if cfg.requests == 0 && cfg.duration <= 0 {
		return fmt.Errorf("need -requests > 0 or -duration > 0")
	}

	var g *graph.Graph
	var err error
	switch {
	case cfg.graphPath != "":
		g, err = repro.LoadGraph(cfg.graphPath)
	case cfg.dataset != "":
		g, err = repro.GenerateDataset(cfg.dataset)
	default:
		return fmt.Errorf("need -graph or -dataset (to extract the workload from)")
	}
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	qs, err := workload.ExtractQueries(g, cfg.querySize, cfg.queries, rng)
	if err != nil {
		return fmt.Errorf("workload extraction: %w", err)
	}
	wire := make([]server.QueryJSON, len(qs))
	for i, q := range qs {
		wire[i] = server.QueryToJSON(q)
	}
	if cfg.zipfCDF, err = parseSkew(cfg.skew, len(wire)); err != nil {
		return err
	}

	base := "http://" + cfg.addr
	client := &http.Client{Timeout: clientTimeout(cfg.timeoutMS)}

	st := newStats()
	start := time.Now()
	if cfg.mode == "closed" {
		err = driveClosed(cfg, client, base, wire, st)
	} else {
		err = driveOpen(cfg, client, base, wire, st)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	snap, snapErr := fetchMetrics(client, base)
	if snapErr != nil {
		fmt.Fprintf(os.Stderr, "psi-loadgen: warning: could not fetch /metrics.json: %v\n", snapErr)
	}

	rep := buildReport(cfg, st, elapsed, snap)
	printSummary(out, rep)

	if cfg.jsonPath != "" {
		if err := writeReport(cfg.jsonPath, rep); err != nil {
			return err
		}
	}

	if cfg.verify {
		mismatches, err := verifyQueries(client, base, g, qs, wire)
		if err != nil {
			return err
		}
		_, _ = fmt.Fprintf(out, "verify: %d/%d queries match the model-free reference\n",
			len(qs)-mismatches, len(qs))
		if mismatches > 0 {
			err := fmt.Errorf("verify: %d of %d queries disagree with the reference evaluation", mismatches, len(qs))
			return bundleOnFail(cfg, client, base, err)
		}
	}

	if err := bundleOnFail(cfg, client, base, assertOutcome(cfg, rep, client, base)); err != nil {
		return err
	}
	return bundleOnFail(cfg, client, base, assertHotShape(cfg, client, base, out))
}

// assertHotShape implements -require-hot-shape: the server's /queryz
// must rank a dominant shape first (cost rank 1 AND the count leader,
// holding well above a uniform mix's share) with a nonzero
// repeat-exact-hit estimate. The hot fingerprint is printed so scripts
// can chase it through /profilez?fingerprint= and bundle workload.json.
func assertHotShape(cfg config, client *http.Client, base string, out io.Writer) error {
	if !cfg.requireHotShape {
		return nil
	}
	resp, err := client.Get(base + "/queryz?format=json")
	if err != nil {
		return fmt.Errorf("-require-hot-shape: %w", err)
	}
	var data obs.WorkloadData
	decErr := json.NewDecoder(resp.Body).Decode(&data)
	closeErr := resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("-require-hot-shape: /queryz: HTTP %d (is the server running with -workload-topk > 0?)", resp.StatusCode)
	}
	if decErr != nil {
		return fmt.Errorf("-require-hot-shape: /queryz: %w", decErr)
	}
	if closeErr != nil {
		return closeErr
	}
	if len(data.Shapes) == 0 {
		return fmt.Errorf("-require-hot-shape: /queryz tracked no shapes")
	}
	top := data.Shapes[0]
	for _, s := range data.Shapes[1:] {
		if s.Count > top.Count {
			return fmt.Errorf("-require-hot-shape: cost rank 1 (%s, count %d) is not the count leader (%s, count %d)",
				top.Fingerprint, top.Count, s.Fingerprint, s.Count)
		}
	}
	// A uniform mix over -queries shapes gives each ~1/queries of the
	// traffic; a Zipfian hot key should hold several times that.
	if minShare := 2.0 / float64(cfg.queries); top.CountShare < minShare {
		return fmt.Errorf("-require-hot-shape: top shape %s holds %.1f%% of observed queries, want >= %.1f%%",
			top.Fingerprint, top.CountShare*100, minShare*100)
	}
	if top.Totals.RepeatHits == 0 {
		return fmt.Errorf("-require-hot-shape: top shape %s has no repeat exact hits", top.Fingerprint)
	}
	_, _ = fmt.Fprintf(out, "hot shape: %s count=%d share=%.1f%% repeat_hits=%d cache_win=%.1f%%\n",
		top.Fingerprint, top.Count, top.CountShare*100, top.Totals.RepeatHits, data.CacheWin.HitRate*100)
	return nil
}

// bundleOnFail implements -bundle-on-fail: when err is non-nil it pulls
// a diagnostic bundle from the server's /debugz/bundle and saves it to
// the configured path, so the failing run's server state (metrics,
// series, alerts, profiles, goroutine and heap dumps) survives for
// psi-bundle to inspect. Always returns the original err; a bundle
// fetch failure is only a warning — it must not mask the real failure.
func bundleOnFail(cfg config, client *http.Client, base string, err error) error {
	if err == nil || cfg.bundleOnFail == "" {
		return err
	}
	resp, ferr := client.Get(base + "/debugz/bundle")
	if ferr != nil {
		fmt.Fprintf(os.Stderr, "psi-loadgen: warning: -bundle-on-fail: %v\n", ferr)
		return err
	}
	data, rerr := io.ReadAll(resp.Body)
	closeErr := resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "psi-loadgen: warning: -bundle-on-fail: /debugz/bundle: HTTP %d\n", resp.StatusCode)
		return err
	}
	if rerr != nil || closeErr != nil {
		fmt.Fprintf(os.Stderr, "psi-loadgen: warning: -bundle-on-fail: reading bundle: %v %v\n", rerr, closeErr)
		return err
	}
	tmp := cfg.bundleOnFail + ".tmp"
	if werr := os.WriteFile(tmp, data, 0o644); werr != nil {
		fmt.Fprintf(os.Stderr, "psi-loadgen: warning: -bundle-on-fail: %v\n", werr)
		return err
	}
	if werr := os.Rename(tmp, cfg.bundleOnFail); werr != nil {
		fmt.Fprintf(os.Stderr, "psi-loadgen: warning: -bundle-on-fail: %v\n", werr)
		return err
	}
	fmt.Fprintf(os.Stderr, "psi-loadgen: diagnostic bundle saved to %s (%d bytes); inspect with psi-bundle report\n",
		cfg.bundleOnFail, len(data))
	return err
}

// parseSkew parses -skew: "" means uniform round-robin (nil CDF), and
// "zipf:<s>" yields the cumulative Zipfian pick distribution over n
// queries with exponent s — query 0 is the designated hot key.
func parseSkew(skew string, n int) ([]float64, error) {
	if skew == "" {
		return nil, nil
	}
	var s float64
	if _, err := fmt.Sscanf(skew, "zipf:%g", &s); err != nil || s <= 0 {
		return nil, fmt.Errorf("-skew must be empty or zipf:<s> with s > 0, got %q", skew)
	}
	weights := make([]float64, n)
	total := 0.0
	for k := range weights {
		weights[k] = 1 / math.Pow(float64(k+1), s)
		total += weights[k]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k, w := range weights {
		acc += w / total
		cdf[k] = acc
	}
	cdf[n-1] = 1 // guard against float drift at the top
	return cdf, nil
}

// pickQuery maps the i-th request onto a wire query index: uniform
// round-robin without skew, otherwise an inverse-CDF Zipf draw from a
// deterministic per-index hash — every run with the same seed and
// request count replays the same mix, with no shared RNG contention
// across driver goroutines.
func (c config) pickQuery(i, n int) int {
	if len(c.zipfCDF) == 0 {
		return i % n
	}
	u := uniform01(c.seed, uint64(i))
	idx := sort.SearchFloat64s(c.zipfCDF, u)
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// uniform01 is a splitmix64-style hash of (seed, i) mapped to [0, 1).
func uniform01(seed int64, i uint64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + (i+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// clientTimeout picks an HTTP client timeout comfortably above the
// server-side deadline so 504s come from the server, not the client.
func clientTimeout(timeoutMS int64) time.Duration {
	t := 10 * time.Second
	if d := 2 * time.Duration(timeoutMS) * time.Millisecond; d > t {
		t = d
	}
	return t
}

// driveClosed runs cfg.concurrency workers, each keeping exactly one
// request in flight until the budget (count or clock) runs out.
func driveClosed(cfg config, client *http.Client, base string, wire []server.QueryJSON, st *stats) error {
	ctx := context.Background()
	if cfg.requests == 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.duration)
		defer cancel()
	}
	// Tickets bound the total when -requests is set; each send consumes
	// one. With -duration the channel is effectively unbounded and the
	// context ends the run.
	tickets := make(chan struct{}, cfg.requests)
	for i := 0; i < cfg.requests; i++ {
		tickets <- struct{}{}
	}
	close(tickets)

	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				if cfg.requests > 0 {
					if _, ok := <-tickets; !ok {
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				sendOne(cfg, client, base, wire, i, st)
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// driveOpen launches requests on a fixed schedule. A semaphore caps
// outstanding requests at 4x concurrency so an unresponsive server
// cannot accumulate unbounded goroutines; launches that would exceed
// the cap are recorded as transport failures (the client gave up).
func driveOpen(cfg config, client *http.Client, base string, wire []server.QueryJSON, st *stats) error {
	if cfg.qps <= 0 {
		return fmt.Errorf("-qps must be > 0 in open mode")
	}
	interval := time.Duration(float64(time.Second) / cfg.qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	total := cfg.requests
	if total == 0 {
		total = int(float64(cfg.duration) / float64(interval))
		if total < 1 {
			total = 1
		}
	}
	sem := make(chan struct{}, 4*cfg.concurrency)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		<-ticker.C
		select {
		case sem <- struct{}{}:
		default:
			st.record(0, 0, false, 0) // over the outstanding cap: client-side drop
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			sendOne(cfg, client, base, wire, i, st)
		}(i)
	}
	wg.Wait()
	return nil
}

// sendOne issues the i-th request — a single query or a batch slice —
// and files the outcome(s) in st.
func sendOne(cfg config, client *http.Client, base string, wire []server.QueryJSON, i int, st *stats) {
	if cfg.batch > 0 {
		sendBatch(cfg, client, base, wire, i, st)
		return
	}
	idx := cfg.pickQuery(i, len(wire))
	st.recordPick(idx)
	qj := wire[idx]
	body, err := json.Marshal(server.PSIRequest{Query: &qj, TimeoutMS: cfg.timeoutMS})
	if err != nil {
		st.record(0, 0, false, 0)
		return
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/psi", "application/json", bytes.NewReader(body))
	if err != nil {
		st.record(0, 0, false, time.Since(start))
		return
	}
	var res server.QueryResult
	decErr := json.NewDecoder(resp.Body).Decode(&res)
	closeErr := resp.Body.Close()
	if resp.StatusCode == http.StatusOK && (decErr != nil || closeErr != nil) {
		st.record(0, 0, false, time.Since(start))
		return
	}
	st.record(resp.StatusCode, len(res.Bindings), res.Partial, time.Since(start))
}

// sendBatch issues one /v1/psi/batch request of cfg.batch queries and
// files each item's embedded status individually.
func sendBatch(cfg config, client *http.Client, base string, wire []server.QueryJSON, i int, st *stats) {
	req := server.BatchRequest{TimeoutMS: cfg.timeoutMS}
	for j := 0; j < cfg.batch; j++ {
		idx := cfg.pickQuery(i*cfg.batch+j, len(wire))
		st.recordPick(idx)
		req.Queries = append(req.Queries, wire[idx])
	}
	body, err := json.Marshal(req)
	if err != nil {
		st.record(0, 0, false, 0)
		return
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/psi/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		st.record(0, 0, false, time.Since(start))
		return
	}
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		closeErr := resp.Body.Close()
		_ = closeErr
		for j := 0; j < cfg.batch; j++ {
			st.record(resp.StatusCode, 0, false, elapsed)
		}
		return
	}
	var br server.BatchResponse
	decErr := json.NewDecoder(resp.Body).Decode(&br)
	closeErr := resp.Body.Close()
	if decErr != nil || closeErr != nil {
		st.record(0, 0, false, elapsed)
		return
	}
	for _, item := range br.Results {
		n := 0
		partial := false
		if item.Result != nil {
			n = len(item.Result.Bindings)
			partial = item.Result.Partial
		}
		st.record(item.Status, n, partial, elapsed)
	}
}

// fetchMetrics pulls the server's post-run metric snapshot.
func fetchMetrics(client *http.Client, base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get(base + "/metrics.json")
	if err != nil {
		return snap, err
	}
	decErr := json.NewDecoder(resp.Body).Decode(&snap)
	closeErr := resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("/metrics.json: HTTP %d", resp.StatusCode)
	}
	if decErr != nil {
		return snap, decErr
	}
	return snap, closeErr
}

// verifyQueries re-runs each distinct query once with a generous
// timeout and compares the served bindings against a direct
// pessimistic-only PSI evaluation (server.Reference). Returns the
// number of mismatching queries.
func verifyQueries(client *http.Client, base string, g *graph.Graph, qs []graph.Query, wire []server.QueryJSON) (int, error) {
	ref, err := server.NewReference(g)
	if err != nil {
		return 0, err
	}
	mismatches := 0
	for i := range qs {
		want, err := ref.Bindings(qs[i])
		if err != nil {
			return 0, fmt.Errorf("verify: reference on query %d: %w", i, err)
		}
		body, err := json.Marshal(server.PSIRequest{Query: &wire[i], TimeoutMS: 30_000})
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(base+"/v1/psi", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("verify: query %d: %w", i, err)
		}
		var res server.QueryResult
		decErr := json.NewDecoder(resp.Body).Decode(&res)
		closeErr := resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("verify: query %d: HTTP %d", i, resp.StatusCode)
		}
		if decErr != nil {
			return 0, fmt.Errorf("verify: query %d: %w", i, decErr)
		}
		if closeErr != nil {
			return 0, closeErr
		}
		if !equalInt64s(res.Bindings, want) {
			// The fingerprint names the query's canonical shape, so a
			// mismatch can be chased through /queryz, /profilez
			// ?fingerprint= and a bundle's workload.json without having to
			// reproduce the loadgen's sampling seed.
			fmt.Fprintf(os.Stderr, "psi-loadgen: verify mismatch on query %d (fingerprint %s): served %v, reference %v\n",
				i, fsm.PivotFingerprint(qs[i], 0).String(), res.Bindings, want)
			mismatches++
		}
	}
	return mismatches, nil
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildReport assembles the results document.
func buildReport(cfg config, st *stats, elapsed time.Duration, snap obs.Snapshot) *report {
	st.mu.Lock()
	defer st.mu.Unlock()
	rep := &report{
		Schema:         1,
		Experiment:     "loadgen",
		Scale:          cfg.concurrency,
		Seed:           cfg.seed,
		ElapsedSeconds: elapsed.Seconds(),
		Metrics:        snap,
		Mode:           cfg.mode,
		Skew:           cfg.skew,
		Requests:       st.requests,
		OK:             st.ok,
		Shed:           st.shed,
		Deadline:       st.deadline,
		ClientErrors:   st.clientErr,
		ServerErrors:   st.serverErr,
		TransportErrs:  st.transport,
		Bindings:       st.bindings,
		Partials:       st.partials,
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(st.requests) / elapsed.Seconds()
	}
	if len(cfg.zipfCDF) > 0 {
		rep.HotIntended = cfg.zipfCDF[0]
		if st.picks > 0 {
			rep.HotObserved = float64(st.hotPicks) / float64(st.picks)
		}
	}
	h := st.reg.Snapshot().Histograms[latencyMetric]
	rep.P50MS = quantileMS(h, 0.50)
	rep.P95MS = quantileMS(h, 0.95)
	rep.P99MS = quantileMS(h, 0.99)
	return rep
}

// quantileMS estimates the q-th latency quantile in milliseconds from
// the client-side histogram via obs.HistogramQuantile (the same
// bucket-interpolation the server's /seriesz uses); 0 for an empty
// histogram.
func quantileMS(h obs.HistogramSnapshot, q float64) float64 {
	v, ok := obs.HistogramQuantile(h, q)
	if !ok {
		return 0
	}
	return v * 1000
}

// printSummary writes the human-readable run summary. Write errors on
// the summary stream are not actionable and are discarded.
func printSummary(out io.Writer, rep *report) {
	_, _ = fmt.Fprintf(out, "mode=%s requests=%d elapsed=%.2fs achieved=%.1f qps\n",
		rep.Mode, rep.Requests, rep.ElapsedSeconds, rep.AchievedQPS)
	_, _ = fmt.Fprintf(out, "ok=%d shed(429)=%d deadline(504)=%d client-4xx=%d server-5xx=%d transport=%d\n",
		rep.OK, rep.Shed, rep.Deadline, rep.ClientErrors, rep.ServerErrors, rep.TransportErrs)
	_, _ = fmt.Fprintf(out, "bindings=%d latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.Bindings, rep.P50MS, rep.P95MS, rep.P99MS)
	if rep.Partials > 0 {
		_, _ = fmt.Fprintf(out, "partial=%d OK responses were flagged partial (a shard's answer is missing)\n",
			rep.Partials)
	}
	if rep.Skew != "" {
		_, _ = fmt.Fprintf(out, "skew=%s hot-key share intended=%.1f%% observed=%.1f%%\n",
			rep.Skew, rep.HotIntended*100, rep.HotObserved*100)
	}
}

// writeReport writes the JSON document atomically next to its final
// path so concurrent readers never see a truncated file.
func writeReport(path string, rep *report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// assertOutcome enforces the self-asserting flags and the always-on
// "no unexpected 5xx" rule.
func assertOutcome(cfg config, rep *report, client *http.Client, base string) error {
	if rep.ServerErrors > 0 {
		return fmt.Errorf("%d unexpected 5xx responses (500/502/503 are never expected from a healthy server)", rep.ServerErrors)
	}
	if cfg.requireShed && rep.Shed == 0 {
		return fmt.Errorf("-require-shed: no request was load-shed (ok=%d, total=%d)", rep.OK, rep.Requests)
	}
	if cfg.requirePartial && rep.Partials == 0 {
		return fmt.Errorf("-require-partial: no OK response carried the partial flag (ok=%d; is a shard actually down?)", rep.OK)
	}
	if rep.Bindings < cfg.minBindings {
		return fmt.Errorf("-min-bindings: got %d bindings, need at least %d", rep.Bindings, cfg.minBindings)
	}
	if cfg.requireAlert != "" || cfg.forbidAlert != "" {
		alerts, err := fetchAlerts(client, base)
		if err != nil {
			return fmt.Errorf("alert assertion: %w", err)
		}
		if cfg.requireAlert != "" {
			state, ok := alerts[cfg.requireAlert]
			if !ok {
				return fmt.Errorf("-require-alert: no objective named %q at /alertz", cfg.requireAlert)
			}
			if state != "firing" {
				return fmt.Errorf("-require-alert: alert %q is %q, want firing", cfg.requireAlert, state)
			}
		}
		if cfg.forbidAlert != "" {
			if state, ok := alerts[cfg.forbidAlert]; ok && state == "firing" {
				return fmt.Errorf("-forbid-alert: alert %q is firing", cfg.forbidAlert)
			}
		}
	}
	return nil
}

// fetchAlerts pulls /alertz and maps objective name -> state.
func fetchAlerts(client *http.Client, base string) (map[string]string, error) {
	resp, err := client.Get(base + "/alertz?format=json")
	if err != nil {
		return nil, err
	}
	var data obs.AlertsData
	decErr := json.NewDecoder(resp.Body).Decode(&data)
	closeErr := resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/alertz: HTTP %d (is the server running with -sample-interval > 0 and an SLO objective?)", resp.StatusCode)
	}
	if decErr != nil {
		return nil, decErr
	}
	if closeErr != nil {
		return nil, closeErr
	}
	out := make(map[string]string, len(data.Alerts))
	for _, a := range data.Alerts {
		out[a.Name] = a.State
	}
	return out, nil
}
