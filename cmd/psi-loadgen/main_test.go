package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/smartpsi"
)

const testGraph = `t # 0
v 0 A
v 1 B
v 2 C
v 3 C
v 4 B
v 5 A
e 0 1
e 0 2
e 0 3
e 0 4
e 1 2
e 1 3
e 4 2
e 4 3
e 5 4
e 5 2
`

// writeGraph materialises the shared test graph as an LG file.
func writeGraph(t *testing.T) string {
	t.Helper()
	gp := filepath.Join(t.TempDir(), "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	return gp
}

// startServer boots a real SmartPSI server over the test graph and
// returns its host:port.
func startServer(t *testing.T, scfg server.Config) string {
	t.Helper()
	g, err := graph.ParseLG(strings.NewReader(testGraph))
	if err != nil {
		t.Fatalf("ParseLG: %v", err)
	}
	engine, err := smartpsi.NewEngine(g, smartpsi.Options{Threads: 1, Seed: 42})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	srv := server.NewServer(engine, scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.Listener.Addr().String()
}

// baseConfig returns a loadgen config pointed at addr with small,
// fast-by-default knobs.
func baseConfig(addr, graphPath string) config {
	return config{
		addr:        addr,
		graphPath:   graphPath,
		querySize:   3,
		queries:     4,
		mode:        "closed",
		concurrency: 4,
		qps:         200,
		requests:    24,
		timeoutMS:   2000,
		seed:        7,
	}
}

// TestClosedLoop drives a real server closed-loop with -verify and
// -min-bindings and checks the -json document round-trips.
func TestClosedLoop(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 4})
	cfg := baseConfig(addr, writeGraph(t))
	cfg.verify = true
	cfg.minBindings = 1
	cfg.jsonPath = filepath.Join(t.TempDir(), "out.json")

	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok=24") {
		t.Errorf("summary does not report 24 OK requests:\n%s", out.String())
	}

	raw, err := os.ReadFile(cfg.jsonPath)
	if err != nil {
		t.Fatalf("read -json: %v", err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("decode -json: %v", err)
	}
	if rep.Schema != 1 || rep.Experiment != "loadgen" {
		t.Errorf("report header = schema %d experiment %q", rep.Schema, rep.Experiment)
	}
	if rep.OK != 24 || rep.ServerErrors != 0 {
		t.Errorf("report counts: ok=%d server5xx=%d", rep.OK, rep.ServerErrors)
	}
	if rep.Bindings < 1 {
		t.Errorf("report bindings = %d, want >= 1", rep.Bindings)
	}
	// The embedded snapshot is the server's, so it must have seen our
	// requests.
	if rep.Metrics.Counters["server_requests_total"] == 0 {
		t.Errorf("embedded server snapshot has no requests: %+v", rep.Metrics.Counters)
	}
}

// TestOpenLoopAndBatch covers the open-loop pacer and the batch
// endpoint path.
func TestOpenLoopAndBatch(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 4})
	gp := writeGraph(t)

	cfg := baseConfig(addr, gp)
	cfg.mode = "open"
	cfg.qps = 500
	cfg.requests = 20
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("open-loop run: %v\noutput:\n%s", err, out.String())
	}

	cfg = baseConfig(addr, gp)
	cfg.batch = 4
	cfg.requests = 6 // 6 batches x 4 queries = 24 query outcomes
	out.Reset()
	if err := run(cfg, &out); err != nil {
		t.Fatalf("batch run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok=24") {
		t.Errorf("batch summary does not report 24 OK queries:\n%s", out.String())
	}
}

// slowEval is a server.Evaluator that takes a fixed wall time per
// query, so a Workers=1/queue=0 server must shed concurrent load.
type slowEval struct{ delay time.Duration }

func (e *slowEval) EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error) {
	time.Sleep(e.delay)
	return &smartpsi.Result{Bindings: []graph.NodeID{0}}, nil
}

// TestRequireShed drives an overloaded shed-immediately server and
// checks both that -require-shed passes when 429s occur and that the
// in-flight queries still succeed.
func TestRequireShed(t *testing.T) {
	srv := server.NewServer(&slowEval{delay: 20 * time.Millisecond}, server.Config{
		Workers:         1,
		QueueDepth:      0,
		ShedImmediately: true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := baseConfig(ts.Listener.Addr().String(), writeGraph(t))
	cfg.concurrency = 8
	cfg.requests = 40
	cfg.requireShed = true
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "shed(429)=") {
		t.Errorf("summary missing shed count:\n%s", out.String())
	}
}

// TestRequireShedFailsWhenUnloaded pins the self-asserting failure: a
// server with headroom never sheds, so -require-shed must error.
func TestRequireShedFailsWhenUnloaded(t *testing.T) {
	addr := startServer(t, server.Config{Workers: 8, QueueDepth: 64})
	cfg := baseConfig(addr, writeGraph(t))
	cfg.requests = 8
	cfg.requireShed = true
	var out bytes.Buffer
	if err := run(cfg, &out); err == nil {
		t.Fatal("-require-shed passed with zero sheds")
	}
}

// TestConfigErrors pins the clean failure modes of bad flag
// combinations.
func TestConfigErrors(t *testing.T) {
	gp := writeGraph(t)
	cases := []struct {
		name string
		mut  func(*config)
	}{
		{"missing addr", func(c *config) { c.addr = "" }},
		{"bad mode", func(c *config) { c.mode = "sideways" }},
		{"no graph", func(c *config) { c.graphPath = "" }},
		{"zero concurrency", func(c *config) { c.concurrency = 0 }},
		{"no budget", func(c *config) { c.requests = 0; c.duration = 0 }},
		{"bad qps", func(c *config) { c.mode = "open"; c.qps = 0 }},
		{"missing graph file", func(c *config) { c.graphPath = filepath.Join(t.TempDir(), "nope.lg") }},
	}
	for _, tc := range cases {
		cfg := baseConfig("127.0.0.1:1", gp)
		tc.mut(&cfg)
		var out bytes.Buffer
		if err := run(cfg, &out); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestQuantileMS pins the histogram-interpolated percentile helper on
// a known 1..10ms sample against hand-computed bucket interpolation
// over obs.LatencyBuckets (1ms lands in the 1ms bucket; 2ms in 2.5ms;
// 3-5ms in 5ms; 6-10ms in 10ms).
func TestQuantileMS(t *testing.T) {
	st := newStats()
	if got := quantileMS(st.reg.Snapshot().Histograms[latencyMetric], 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	for ms := 1; ms <= 10; ms++ {
		st.latency.Observe(float64(ms) / 1000)
	}
	h := st.reg.Snapshot().Histograms[latencyMetric]
	// rank 5 closes the 5ms bucket exactly: 2.5 + 2.5*(5-2)/3 = 5.
	if got := quantileMS(h, 0.5); !closeTo(got, 5) {
		t.Errorf("p50 = %v ms, want 5", got)
	}
	// rank 9.9 interpolates the 10ms bucket: 5 + 5*(9.9-5)/5 = 9.9.
	if got := quantileMS(h, 0.99); !closeTo(got, 9.9) {
		t.Errorf("p99 = %v ms, want 9.9", got)
	}
}

func closeTo(got, want float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff < 1e-9
}
