package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const testGraph = `t # 0
v 0 A
v 1 B
v 2 C
v 3 C
v 4 B
v 5 A
e 0 1
e 0 2
e 0 3
e 0 4
e 1 2
e 1 3
e 4 2
e 4 3
e 5 4
e 5 2
`

// testConfig returns a config suitable for an in-process test server:
// ephemeral port, small pools, short drain.
func testConfig(graphPath string) config {
	return config{
		graphPath:      graphPath,
		addr:           "127.0.0.1:0",
		workers:        2,
		queue:          8,
		defaultTimeout: 2 * time.Second,
		maxTimeout:     5 * time.Second,
		maxBatch:       8,
		maxQueryNodes:  16,
		retryAfter:     time.Second,
		drainTimeout:   5 * time.Second,
		threads:        1,
		seed:           42,
		shardIndex:     -1, // flag default: unset
	}
}

// startRun launches run() in a goroutine and waits for the bound
// address. The returned cancel triggers the drain path; the returned
// channel yields run's error once it exits.
func startRun(t *testing.T, cfg config) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(cfg, ctx, ready) }()
	select {
	case addr := <-ready:
		return addr, cancel, errc
	case err := <-errc:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server did not become ready")
	}
	panic("unreachable")
}

// TestRunServesAndDrains boots the full binary path (graph load, engine
// build, listener, HTTP loop), runs one query end to end, and verifies
// that cancelling the parent context drains and exits cleanly.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(gp)
	cfg.addrFile = filepath.Join(dir, "addr")
	addr, cancel, errc := startRun(t, cfg)
	defer cancel()

	// The addr-file seam scripts rely on must hold the bound address.
	b, err := os.ReadFile(cfg.addrFile)
	if err != nil {
		t.Fatalf("addr-file: %v", err)
	}
	if string(b) != addr {
		t.Fatalf("addr-file = %q, bound = %q", b, addr)
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	// Triangle A-B-C pivoted at A: nodes 0 and (by symmetry of the test
	// graph) 5 both close triangles with a B and a C neighbour.
	body := `{"query":{"nodes":[0,1,2],"edges":[[0,1],[1,2],[0,2]],"pivot":0},"timeout_ms":2000}`
	resp, err = http.Post(base+"/v1/psi", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("psi: %v", err)
	}
	var out struct {
		Bindings []int64 `json:"bindings"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("psi status = %d", resp.StatusCode)
	}
	if len(out.Bindings) == 0 {
		t.Fatal("no bindings for triangle query")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}

// TestRunDataset covers the -dataset loading branch with a built-in
// generator instead of a file.
func TestRunDataset(t *testing.T) {
	cfg := testConfig("")
	cfg.dataset = "yeast"
	addr, cancel, errc := startRun(t, cfg)
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d", resp.StatusCode)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunErrors pins the clean failure modes: no input, a missing
// file, an unknown dataset, and an unbindable address.
func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(testConfig(""), ctx, nil); err == nil {
		t.Error("no -graph/-dataset accepted")
	}
	if err := run(testConfig(filepath.Join(t.TempDir(), "missing.lg")), ctx, nil); err == nil {
		t.Error("missing graph accepted")
	}
	cfg := testConfig("")
	cfg.dataset = "no-such-dataset"
	if err := run(cfg, ctx, nil); err == nil {
		t.Error("unknown dataset accepted")
	}

	gp := filepath.Join(t.TempDir(), "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = testConfig(gp)
	cfg.addr = "256.256.256.256:0"
	if err := run(cfg, ctx, nil); err == nil {
		t.Error("unbindable address accepted")
	}
}

// TestRunCluster boots the -shards in-process scatter-gather mode and
// checks a query answers with per-shard outcomes plus shard health in
// /readyz.
func TestRunCluster(t *testing.T) {
	gp := filepath.Join(t.TempDir(), "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(gp)
	cfg.shards = 2
	cfg.partitioner = "label-hash"
	addr, cancel, errc := startRun(t, cfg)
	defer cancel()

	base := "http://" + addr
	body := `{"query":{"nodes":[0,1,2],"edges":[[0,1],[1,2],[0,2]],"pivot":0},"timeout_ms":2000}`
	resp, err := http.Post(base+"/v1/psi", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Bindings []int64 `json:"bindings"`
		Partial  bool    `json:"partial"`
		Shards   []struct {
			Shard int `json:"shard"`
		} `json:"shards"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("psi status = %d, err = %v", resp.StatusCode, err)
	}
	if len(out.Bindings) == 0 || out.Partial || len(out.Shards) != 2 {
		t.Fatalf("cluster answer: %+v", out)
	}

	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		ShardsHealthy int `json:"shards_healthy"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ready)
	_ = resp.Body.Close()
	if err != nil || ready.ShardsHealthy != 2 {
		t.Fatalf("readyz shards_healthy = %d, err = %v", ready.ShardsHealthy, err)
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunFleet boots two -shard-of nodes plus a -coordinator process
// in-process and runs a query through the whole scatter path.
func TestRunFleet(t *testing.T) {
	gp := filepath.Join(t.TempDir(), "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	var addrs [2]string
	for i := 0; i < 2; i++ {
		cfg := testConfig(gp)
		cfg.shardOf = 2
		cfg.shardIndex = i
		addr, cancel, _ := startRun(t, cfg)
		defer cancel()
		addrs[i] = addr
	}
	ccfg := testConfig("")
	ccfg.coordinator = true
	ccfg.shardAddrs = addrs[0] + "," + addrs[1]
	ccfg.shardProbe = 50 * time.Millisecond
	caddr, ccancel, cerrc := startRun(t, ccfg)
	defer ccancel()

	body := `{"query":{"nodes":[0,1,2],"edges":[[0,1],[1,2],[0,2]],"pivot":0},"timeout_ms":2000}`
	resp, err := http.Post("http://"+caddr+"/v1/psi", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Bindings []int64 `json:"bindings"`
		Partial  bool    `json:"partial"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet psi status = %d, err = %v", resp.StatusCode, err)
	}
	if len(out.Bindings) == 0 || out.Partial {
		t.Fatalf("fleet answer: %+v", out)
	}
	ccancel()
	if err := <-cerrc; err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
}

// TestRunShardFlagErrors pins the serving-mode flag validation.
func TestRunShardFlagErrors(t *testing.T) {
	gp := filepath.Join(t.TempDir(), "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		mut  func(*config)
	}{
		{"shards+shard-of", func(c *config) { c.shards = 2; c.shardOf = 2; c.shardIndex = 0 }},
		{"shard-of without index", func(c *config) { c.shardOf = 2 }},
		{"index out of range", func(c *config) { c.shardOf = 2; c.shardIndex = 2 }},
		{"index without shard-of", func(c *config) { c.shardIndex = 0 }},
		{"coordinator without addrs", func(c *config) { c.graphPath = ""; c.coordinator = true }},
		{"coordinator with graph", func(c *config) { c.coordinator = true; c.shardAddrs = "127.0.0.1:1" }},
		{"addrs without coordinator", func(c *config) { c.shardAddrs = "127.0.0.1:1" }},
		{"bad partitioner", func(c *config) { c.shards = 2; c.partitioner = "round-robin" }},
	}
	for _, tc := range cases {
		cfg := testConfig(gp)
		tc.mut(&cfg)
		if err := run(cfg, ctx, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRunAddrFileError pins the atomic addr-file write failing when the
// destination directory does not exist.
func TestRunAddrFileError(t *testing.T) {
	gp := filepath.Join(t.TempDir(), "g.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(gp)
	cfg.addrFile = filepath.Join(t.TempDir(), "no-such-dir", "addr")
	if err := run(cfg, context.Background(), nil); err == nil {
		t.Error("unwritable addr-file accepted")
	}
}
