// Command psi-serve is the long-lived PSI query service: it loads one
// data graph, builds the SmartPSI engine once (signatures computed,
// prediction machinery warm), and serves pivoted-subgraph-isomorphism
// queries over HTTP/JSON with admission control, per-request deadlines,
// load shedding, and graceful drain (see internal/server and
// OPERATIONS.md).
//
// Usage:
//
//	psi-serve -graph g.lg                        # serve a graph file
//	psi-serve -dataset cora -addr 127.0.0.1:8080 # serve a built-in dataset
//	psi-serve -graph g.lg -workers 8 -queue 128 -default-timeout 2s
//	psi-serve -graph g.lg -addr 127.0.0.1:0 -addr-file /tmp/addr
//	psi-serve -graph g.lg -sample-interval 1s -slo-availability 0.99
//
// Sharded serving (see ARCHITECTURE.md "Sharded serving" and the
// OPERATIONS.md fleet runbook) comes in three forms:
//
//	psi-serve -graph g.lg -shards 4              # in-process scatter-gather cluster
//	psi-serve -graph g.lg -shard-of 2 -shard-index 0   # one fleet shard node
//	psi-serve -coordinator -shard-addrs host0:8080,host1:8080
//
// A shard node loads the same graph file as its peers, derives the
// deterministic ownership partition, and serves only its slice's owned
// bindings (on global node ids). The coordinator holds no graph at
// all: it scatters each query to every shard node over the normal wire
// format and merges the answers, flagging partial results when a shard
// is lost.
//
// Endpoints: POST /v1/psi, POST /v1/psi/batch, GET /healthz, GET
// /readyz, plus the full obs debug surface (/metrics, /metrics.json,
// /tracez, /profilez, /modelz, /seriesz, /alertz, /queryz,
// /debugz/bundle; /debug/pprof answers 403 unless -expose-pprof is
// set). Metric
// collection is always on in a serving process; with -sample-interval
// > 0 a background sampler additionally keeps windowed time series
// (/seriesz) and evaluates SLO burn-rate alerts (/alertz). With
// -bundle-dir set, a diagnostic bundle (zip of metrics, series,
// alerts, profiles, goroutine + heap dumps, decision and access tails)
// is auto-captured whenever an SLO objective starts firing. With
// -workload-topk > 0 (the default) every served query is canonically
// fingerprinted and folded into a bounded top-K sketch served at
// /queryz — per-shape counts, cost attribution and an answer-cache
// win estimate; bundles then carry workload.json.
//
// A single query:
//
//	curl -s localhost:8080/v1/psi -d '{"query":{"nodes":[0,1,0],
//	  "edges":[[0,1],[1,2],[0,2]],"pivot":0},"timeout_ms":500}'
//
// On SIGINT/SIGTERM the server stops admitting work (readyz -> 503,
// /v1 routes -> 503 + Retry-After), finishes in-flight queries, and
// exits; -drain-timeout bounds the wait.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	repro "repro"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/smartpsi"
)

func main() {
	var (
		graphPath      = flag.String("graph", "", "data graph file (LG format)")
		dataset        = flag.String("dataset", "", "built-in dataset name (alternative to -graph)")
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile       = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		workers        = flag.Int("workers", 0, "concurrent query evaluations (0: GOMAXPROCS)")
		queue          = flag.Int("queue", 64, "admission wait-queue depth (0: shed immediately when busy)")
		defaultTimeout = flag.Duration("default-timeout", 2*time.Second, "deadline for requests without timeout_ms")
		maxTimeout     = flag.Duration("max-timeout", 30*time.Second, "clamp on client-requested timeouts")
		maxBatch       = flag.Int("max-batch", 64, "max queries per /v1/psi/batch request")
		maxQueryNodes  = flag.Int("max-query-nodes", 32, "max nodes in one query graph")
		retryAfter     = flag.Duration("retry-after", time.Second, "static Retry-After fallback on 429/503 when no drain estimate is available")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
		threads        = flag.Int("threads", 1, "candidate-evaluation workers inside one query")
		seed           = flag.Int64("seed", 42, "engine sampling seed")
		shadowRate     = flag.Float64("shadow-rate", 0, "model-decision audit sampling rate in [0,1] (see /modelz)")

		shards       = flag.Int("shards", 0, "run an in-process scatter-gather cluster of N shards (0: single engine)")
		partitioner  = flag.String("partitioner", "label-hash", "shard ownership partitioner: label-hash or degree")
		halo         = flag.Int("halo", 0, "shard boundary-halo replication depth in hops (0: query-radius + signature depth)")
		queryRadius  = flag.Int("query-radius", 0, "max pivot eccentricity accepted by sharded serving (0: default 3)")
		shardWorkers = flag.Int("shard-workers", 0, "per-shard evaluation workers in -shards mode (0: match -workers)")
		shardOf      = flag.Int("shard-of", 0, "serve as one node of an N-shard fleet (requires -shard-index)")
		shardIndex   = flag.Int("shard-index", -1, "this node's shard index in [0, shard-of)")
		coordinator  = flag.Bool("coordinator", false, "serve as a fleet coordinator scattering to -shard-addrs (no -graph needed)")
		shardAddrs   = flag.String("shard-addrs", "", "comma-separated shard node addresses in shard-index order (coordinator mode)")
		shardProbe   = flag.Duration("shard-probe", 2*time.Second, "coordinator health-probe interval for per-shard /readyz rows")

		sampleInterval = flag.Duration("sample-interval", time.Second, "metrics sampling interval for /seriesz and /alertz (0: disable sampling and SLO alerting)")
		seriesSamples  = flag.Int("series-samples", 0, "ring-buffer capacity per metric series (0: default 128)")
		sloAvail       = flag.Float64("slo-availability", 0.99, "availability SLO target in (0,1) (0: disable the availability objective)")
		sloLatencyMS   = flag.Float64("slo-latency-ms", 0, "latency SLO threshold in milliseconds (0: no latency objective)")
		sloLatencyTgt  = flag.Float64("slo-latency-target", 0.95, "fraction of requests that must finish under -slo-latency-ms")
		sloFastWindow  = flag.Duration("slo-fast-window", time.Minute, "fast burn-rate window")
		sloSlowWindow  = flag.Duration("slo-slow-window", 5*time.Minute, "slow burn-rate window")
		sloBurnFactor  = flag.Float64("slo-burn-factor", 14.4, "burn-rate threshold both windows must exceed")
		sloFor         = flag.Duration("slo-for", 0, "time an alert stays pending before it fires")

		workloadTopK = flag.Int("workload-topk", 64, "shapes tracked by the /queryz workload sketch (0: disable workload analytics and query fingerprinting)")

		bundleDir      = flag.String("bundle-dir", "", "directory for auto-captured diagnostic bundles when an SLO alert fires (empty: manual /debugz/bundle only)")
		bundleCooldown = flag.Duration("bundle-cooldown", 5*time.Minute, "minimum time between auto-captured bundles per objective")
		bundleKeep     = flag.Int("bundle-keep", 8, "auto-captured bundles retained on disk before the oldest is evicted")
		exposePprof    = flag.Bool("expose-pprof", false, "mount /debug/pprof on the serving listener (off: 403; heap/goroutine dumps stay available via /debugz/bundle)")
	)
	flag.Parse()
	if err := run(config{
		graphPath: *graphPath, dataset: *dataset,
		addr: *addr, addrFile: *addrFile,
		workers: *workers, queue: *queue,
		defaultTimeout: *defaultTimeout, maxTimeout: *maxTimeout,
		maxBatch: *maxBatch, maxQueryNodes: *maxQueryNodes,
		retryAfter: *retryAfter, drainTimeout: *drainTimeout,
		threads: *threads, seed: *seed, shadowRate: *shadowRate,
		shards: *shards, partitioner: *partitioner, halo: *halo,
		queryRadius: *queryRadius, shardWorkers: *shardWorkers,
		shardOf: *shardOf, shardIndex: *shardIndex,
		coordinator: *coordinator, shardAddrs: *shardAddrs, shardProbe: *shardProbe,
		sampleInterval: *sampleInterval, seriesSamples: *seriesSamples,
		sloAvailability: *sloAvail,
		sloLatency:      time.Duration(*sloLatencyMS * float64(time.Millisecond)),
		sloLatencyTgt:   *sloLatencyTgt,
		sloFastWindow:   *sloFastWindow, sloSlowWindow: *sloSlowWindow,
		sloBurnFactor: *sloBurnFactor, sloFor: *sloFor,
		workloadTopK: *workloadTopK,
		bundleDir:    *bundleDir, bundleCooldown: *bundleCooldown,
		bundleKeep: *bundleKeep, exposePprof: *exposePprof,
	}, context.Background(), nil); err != nil {
		fmt.Fprintln(os.Stderr, "psi-serve:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags into run.
type config struct {
	graphPath, dataset string
	addr, addrFile     string
	workers, queue     int
	defaultTimeout     time.Duration
	maxTimeout         time.Duration
	maxBatch           int
	maxQueryNodes      int
	retryAfter         time.Duration
	drainTimeout       time.Duration
	threads            int
	seed               int64
	shadowRate         float64

	shards       int    // >0: in-process scatter-gather cluster
	partitioner  string // label-hash | degree
	halo         int    // 0: auto (query radius + signature depth)
	queryRadius  int    // 0: shard.DefaultQueryRadius
	shardWorkers int    // 0: match the server worker count
	shardOf      int    // >0: fleet shard node of N
	shardIndex   int    // this node's index in [0, shardOf)
	coordinator  bool   // fleet coordinator mode
	shardAddrs   string // comma-separated shard addresses
	shardProbe   time.Duration

	sampleInterval  time.Duration // 0: no sampler, no SLO alerting
	seriesSamples   int
	sloAvailability float64
	sloLatency      time.Duration
	sloLatencyTgt   float64
	sloFastWindow   time.Duration
	sloSlowWindow   time.Duration
	sloBurnFactor   float64
	sloFor          time.Duration

	workloadTopK int // 0: workload analytics off, /queryz answers 503

	bundleDir      string // "": auto-capture disarmed, /debugz/bundle still live
	bundleCooldown time.Duration
	bundleKeep     int
	exposePprof    bool
}

// validate rejects contradictory serving-mode flag combinations up
// front, before any graph is loaded.
func (c config) validate() error {
	modes := 0
	if c.shards > 0 {
		modes++
	}
	if c.shardOf > 0 {
		modes++
	}
	if c.coordinator {
		modes++
	}
	if modes > 1 {
		return fmt.Errorf("-shards, -shard-of and -coordinator are mutually exclusive serving modes")
	}
	if c.shardOf > 0 && (c.shardIndex < 0 || c.shardIndex >= c.shardOf) {
		return fmt.Errorf("-shard-of %d needs -shard-index in [0,%d)", c.shardOf, c.shardOf)
	}
	if c.shardIndex >= 0 && c.shardOf <= 0 {
		return fmt.Errorf("-shard-index requires -shard-of")
	}
	if c.coordinator {
		if strings.TrimSpace(c.shardAddrs) == "" {
			return fmt.Errorf("-coordinator requires -shard-addrs")
		}
		if c.graphPath != "" || c.dataset != "" {
			return fmt.Errorf("a coordinator holds no graph; drop -graph/-dataset")
		}
	} else if c.shardAddrs != "" {
		return fmt.Errorf("-shard-addrs only applies with -coordinator")
	}
	if _, err := shard.ParseStrategy(c.partitioner); c.partitioner != "" && err != nil {
		return err
	}
	return nil
}

// objectives assembles the SLO list from flags; empty when every
// objective is disabled.
func (c config) objectives() []obs.Objective {
	var objs []obs.Objective
	if c.sloAvailability > 0 {
		objs = append(objs, obs.AvailabilityObjective(
			c.sloAvailability, c.sloFastWindow, c.sloSlowWindow, c.sloBurnFactor, c.sloFor))
	}
	if c.sloLatency > 0 {
		objs = append(objs, obs.LatencyObjective(
			c.sloLatency, c.sloLatencyTgt, c.sloFastWindow, c.sloSlowWindow, c.sloBurnFactor, c.sloFor))
	}
	return objs
}

// buildEvaluator constructs the serving-mode evaluator: a plain warm
// engine by default, an in-process scatter-gather cluster with -shards,
// one fleet shard node with -shard-of/-shard-index, or a graph-less
// coordinator with -coordinator. g is nil exactly in coordinator mode.
func buildEvaluator(cfg config, g *graph.Graph, decisions *obs.DecisionLog, logger *slog.Logger) (server.Evaluator, error) {
	engOpts := smartpsi.Options{
		Threads:     cfg.threads,
		Seed:        cfg.seed,
		ShadowRate:  cfg.shadowRate,
		DecisionLog: decisions,
	}
	strat := shard.LabelHash
	if cfg.partitioner != "" {
		var err error
		if strat, err = shard.ParseStrategy(cfg.partitioner); err != nil {
			return nil, err
		}
	}
	switch {
	case cfg.coordinator:
		addrs := strings.Split(cfg.shardAddrs, ",")
		coord, err := server.NewCoordinator(server.CoordinatorConfig{
			Addrs:         addrs,
			QueryRadius:   cfg.queryRadius,
			ProbeInterval: cfg.shardProbe,
		})
		if err != nil {
			return nil, err
		}
		logger.Info("coordinator armed",
			"shards", len(addrs), "probe_interval", cfg.shardProbe.String())
		return coord, nil

	case cfg.shards > 0:
		pool := cfg.shardWorkers
		if pool == 0 {
			pool = cfg.workers
		}
		if pool == 0 {
			pool = runtime.GOMAXPROCS(0)
		}
		cluster, err := shard.NewCluster(g, shard.Options{
			Shards:      cfg.shards,
			Strategy:    strat,
			Halo:        cfg.halo,
			QueryRadius: cfg.queryRadius,
			Workers:     pool,
			Engine:      engOpts,
		})
		if err != nil {
			return nil, err
		}
		logger.Info("graph loaded",
			"nodes", g.NumNodes(), "edges", g.NumEdges(), "labels", g.NumLabels())
		for _, st := range cluster.ShardStatuses() {
			logger.Info("shard warm", "shard", st.Index,
				"owned_nodes", st.OwnedNodes, "halo_nodes", st.HaloNodes)
		}
		logger.Info("cluster armed", "shards", cfg.shards,
			"partitioner", strat.String(), "workers_per_shard", pool)
		return cluster, nil

	case cfg.shardOf > 0:
		node, err := shard.NewNode(g, shard.Options{
			Strategy:    strat,
			Halo:        cfg.halo,
			QueryRadius: cfg.queryRadius,
			Engine:      engOpts,
		}, cfg.shardOf, cfg.shardIndex)
		if err != nil {
			return nil, err
		}
		s := node.Slice()
		logger.Info("graph loaded",
			"nodes", g.NumNodes(), "edges", g.NumEdges(), "labels", g.NumLabels())
		logger.Info("shard node armed",
			"shard", cfg.shardIndex, "of", cfg.shardOf,
			"partitioner", strat.String(), "halo", s.Halo,
			"owned_nodes", s.OwnedCount, "halo_nodes", s.HaloCount,
			"slice_nodes", s.Sub.NumNodes(), "slice_edges", s.Sub.NumEdges())
		return node, nil
	}

	engine, err := smartpsi.NewEngine(g, engOpts)
	if err != nil {
		return nil, err
	}
	logger.Info("graph loaded",
		"nodes", g.NumNodes(), "edges", g.NumEdges(), "labels", g.NumLabels(),
		"signature_build", engine.SignatureBuildTime.String())
	return engine, nil
}

// run loads the graph, builds the engine, and serves until a signal
// arrives or parent is cancelled, then drains. The ready channel (test
// seam; main passes nil) receives the bound address once listening.
func run(cfg config, parent context.Context, ready chan<- string) error {
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))

	if err := cfg.validate(); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	switch {
	case cfg.coordinator:
		// The coordinator never evaluates locally; shard nodes hold the
		// graph slices.
	case cfg.graphPath != "":
		g, err = repro.LoadGraph(cfg.graphPath)
	case cfg.dataset != "":
		g, err = repro.GenerateDataset(cfg.dataset)
	default:
		return fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		return err
	}

	// A serving process always collects: metrics, traces, the /profilez
	// flight recorder and /modelz all feed from the same gate.
	obs.Enable(true)

	// The decision tail keeps the last few hundred model decisions in
	// memory for diagnostic bundles; records are only produced when
	// auditing is on (-shadow-rate > 0), so this is free otherwise.
	decisions := obs.NewDecisionTail(obs.DefaultDecisionTailCap)

	eval, err := buildEvaluator(cfg, g, decisions, logger)
	if err != nil {
		return err
	}
	if cl, ok := eval.(interface{ Close() }); ok {
		defer cl.Close()
	}

	// The windowed-telemetry sampler and SLO alerting ride on the same
	// background loop; -sample-interval 0 turns both off and the debug
	// endpoints answer 503.
	var sampler *obs.Sampler
	var alerts *obs.SLOSet
	if cfg.sampleInterval > 0 {
		sampler = obs.NewSampler(obs.Default, cfg.sampleInterval, cfg.seriesSamples)
		obs.ArmRuntimeGauges(sampler)
		if objs := cfg.objectives(); len(objs) > 0 {
			alerts = obs.NewSLOSet(sampler, objs)
			for _, o := range objs {
				logger.Info("slo objective armed", "name", o.Name, "target", o.Target,
					"fast_window", o.FastWindow.String(), "slow_window", o.SlowWindow.String(),
					"burn_factor", o.BurnFactor, "for", o.For.String())
			}
		}
		sampler.Start()
		defer sampler.Stop()
	}

	// Workload analytics: a bounded Space-Saving sketch of canonical
	// query shapes feeding /queryz; -workload-topk 0 leaves the serving
	// path entirely fingerprint-free.
	var workload *obs.Workload
	if cfg.workloadTopK > 0 {
		workload = obs.NewWorkload(cfg.workloadTopK)
		logger.Info("workload analytics armed", "topk", cfg.workloadTopK)
	}

	// The bundler is always built so /debugz/bundle works; auto-capture
	// on firing alerts only arms when -bundle-dir is set.
	bundler, err := obs.NewBundler(obs.BundlerConfig{
		Dir:       cfg.bundleDir,
		Keep:      cfg.bundleKeep,
		Cooldown:  cfg.bundleCooldown,
		Sampler:   sampler,
		Alerts:    alerts,
		Recorder:  obs.DefaultRecorder,
		Decisions: decisions,
		Access:    obs.DefaultAccess,
		Workload:  workload,
		Log:       logger,
	})
	if err != nil {
		return err
	}
	if bundler.Armed() {
		logger.Info("diagnostic bundles armed",
			"dir", cfg.bundleDir, "cooldown", cfg.bundleCooldown.String(), "keep", cfg.bundleKeep)
	}

	srv := server.NewServer(eval, server.Config{
		Workers:         cfg.workers,
		QueueDepth:      cfg.queue,
		ShedImmediately: cfg.queue == 0,
		DefaultTimeout:  cfg.defaultTimeout,
		MaxTimeout:      cfg.maxTimeout,
		MaxBatch:        cfg.maxBatch,
		MaxQueryNodes:   cfg.maxQueryNodes,
		RetryAfter:      cfg.retryAfter,
		Sampler:         sampler,
		Alerts:          alerts,
		Bundler:         bundler,
		Workload:        workload,
		ExposePprof:     cfg.exposePprof,
		Log:             logger,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if cfg.addrFile != "" {
		// Write to a temp file and rename so readers never see a
		// partial address.
		tmp := cfg.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, cfg.addrFile); err != nil {
			return err
		}
	}
	logger.Info("listening",
		"url", "http://"+bound,
		"workers", srv.Config().Workers, "queue", srv.Config().QueueDepth,
		"default_timeout", srv.Config().DefaultTimeout.String(),
		"sample_interval", cfg.sampleInterval.String())
	if ready != nil {
		ready <- bound
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	logger.Info("signal received; draining", "timeout", cfg.drainTimeout.String())
	//lint:ignore ctxflow the signal context is already cancelled at this point; the drain deadline must be fresh or Drain would return immediately
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain failed", "err", err.Error())
	} else {
		logger.Info("drain complete")
	}
	//lint:ignore ctxflow same as the drain context: parent is cancelled, the shutdown bound must be fresh
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
