// Command psilint enforces this repository's correctness conventions
// with a small stdlib-only static analyzer (go/parser + go/types).
//
// Usage:
//
//	psilint [-root dir] [-rules]
//
// With no flags it locates the module root (the nearest ancestor of the
// working directory containing go.mod), loads every non-test package,
// and prints one line per finding:
//
//	path/file.go:12:3: [rulename] message
//
// Exit status is 1 when findings exist, 2 on load errors, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root to lint (default: nearest ancestor with go.mod)")
	listRules := flag.Bool("rules", false, "list the enforced rules and exit")
	flag.Parse()

	if *listRules {
		for _, r := range lint.Registry {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "psilint:", err)
			os.Exit(2)
		}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psilint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psilint:", err)
		os.Exit(2)
	}
	findings := lint.Run(loader.Fset, pkgs, lint.Registry)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "psilint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
