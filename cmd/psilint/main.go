// Command psilint enforces this repository's correctness conventions
// with a stdlib-only whole-program static analyzer (go/parser +
// go/types + a type-informed call graph).
//
// Usage:
//
//	psilint [-root dir] [-rules r1,r2] [-format text|json|sarif]
//	        [-baseline file] [-update-baseline] [-list]
//
// With no flags it locates the module root (the nearest ancestor of
// the working directory containing go.mod), loads every non-test
// package, evaluates the rule registry, and prints one line per
// finding:
//
//	path/file.go:12:3: [rulename] message
//
// With -baseline, findings already recorded in the baseline file are
// grandfathered: they are printed (marked "baselined") but do not
// affect the exit status, stale baseline entries are reported for
// deletion, and only fresh error-severity findings gate.
// -update-baseline rewrites the baseline to the current findings.
//
// Exit status: 0 clean (no fresh error findings), 1 findings, 2 on
// usage or load errors — so scripts can tell "the repo is dirty" from
// "the analyzer could not run".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive the full
// CLI surface.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root           = fs.String("root", "", "module root to lint (default: nearest ancestor with go.mod)")
		list           = fs.Bool("list", false, "print the rule registry (name, tier, severity, doc) and exit")
		rulesFlag      = fs.String("rules", "", "comma-separated rule names to run (default: all)")
		format         = fs.String("format", "text", "output format: text, json, or sarif")
		baselinePath   = fs.String("baseline", "", "baseline file to diff findings against")
		updateBaseline = fs.Bool("update-baseline", false, "rewrite -baseline with the current findings and exit 0")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *list {
		printRegistry(stdout)
		return exitClean
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fprintf(stderr, "psilint: unknown -format %q (want text, json, or sarif)\n", *format)
		return exitUsage
	}
	rules, err := selectRules(*rulesFlag)
	if err != nil {
		fprintln(stderr, "psilint:", err)
		return exitUsage
	}
	if *updateBaseline && *baselinePath == "" {
		fprintln(stderr, "psilint: -update-baseline requires -baseline")
		return exitUsage
	}

	dir := *root
	if dir == "" {
		if dir, err = findModuleRoot(); err != nil {
			fprintln(stderr, "psilint:", err)
			return exitUsage
		}
	}
	if dir, err = filepath.Abs(dir); err != nil {
		fprintln(stderr, "psilint:", err)
		return exitUsage
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fprintln(stderr, "psilint:", err)
		return exitUsage
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fprintln(stderr, "psilint:", err)
		return exitUsage
	}
	if len(pkgs) == 0 {
		fprintf(stderr, "psilint: no Go packages under %s\n", dir)
		return exitUsage
	}
	findings := lint.Run(loader.Fset, pkgs, rules)

	if *updateBaseline {
		b := lint.NewBaseline(dir, findings)
		if err := b.Write(*baselinePath); err != nil {
			fprintln(stderr, "psilint:", err)
			return exitUsage
		}
		fprintf(stderr, "psilint: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return exitClean
	}

	// Baseline diff: only fresh findings gate; grandfathered ones stay
	// visible and stale entries are called out for deletion.
	fresh := findings
	var grandfathered []lint.Finding
	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fprintln(stderr, "psilint:", err)
			return exitUsage
		}
		fresh, grandfathered, stale = b.Diff(dir, findings)
		// Under -rules filtering, baseline entries for unselected rules
		// were not checked this run — not finding them does not mean
		// they were fixed, so they must not be reported stale.
		selected := map[string]bool{}
		for _, r := range rules {
			selected[r.Name] = true
		}
		kept := stale[:0]
		for _, e := range stale {
			if selected[e.Rule] {
				kept = append(kept, e)
			}
		}
		stale = kept
	}

	switch *format {
	case "json":
		if err := writeJSON(stdout, dir, fresh, grandfathered); err != nil {
			fprintln(stderr, "psilint:", err)
			return exitUsage
		}
	case "sarif":
		// SARIF carries only the gating (fresh) findings: the artifact
		// uploaded from CI should annotate what the gate failed on.
		data, err := lint.SARIF(dir, rules, fresh)
		if err != nil {
			fprintln(stderr, "psilint:", err)
			return exitUsage
		}
		fprintln(stdout, string(data))
	default:
		for _, f := range fresh {
			fprintf(stdout, "%s: [%s] %s%s\n", f.Pos, f.Rule, warnTag(f), f.Msg)
		}
		for _, f := range grandfathered {
			fprintf(stdout, "%s: [%s] (baselined) %s\n", f.Pos, f.Rule, f.Msg)
		}
		for _, e := range stale {
			fprintf(stderr, "psilint: stale baseline entry (fixed? delete it): %s %s: %s\n", e.File, e.Rule, e.Message)
		}
	}

	if lint.HasErrors(fresh) {
		fprintf(stderr, "psilint: %d finding(s), %d gating\n", len(fresh), countErrors(fresh))
		return exitFindings
	}
	return exitClean
}

// fprintf / fprintln write CLI output best-effort, like fmt.Printf:
// a write error on the user's stdout/stderr is not actionable here,
// and discarding it explicitly keeps the ignorederr rule honest.
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func fprintln(w io.Writer, args ...any) {
	_, _ = fmt.Fprintln(w, args...)
}

func warnTag(f lint.Finding) string {
	if f.Severity == lint.SevWarn {
		return "(warn) "
	}
	return ""
}

func countErrors(findings []lint.Finding) int {
	n := 0
	for _, f := range findings {
		if f.Severity == lint.SevError {
			n++
		}
	}
	return n
}

// selectRules resolves the -rules filter against the registry.
func selectRules(filter string) ([]lint.Rule, error) {
	if filter == "" {
		return lint.Registry, nil
	}
	byName := map[string]lint.Rule{}
	for _, r := range lint.Registry {
		byName[r.Name] = r
	}
	var out []lint.Rule
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (see -list)", name)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules selected no rules")
	}
	return out, nil
}

func printRegistry(w io.Writer) {
	for _, r := range lint.Registry {
		fprintf(w, "%-12s %-10s %-6s %s\n", r.Name, r.Tier, r.Severity, r.Doc)
	}
}

// jsonFinding is the -format json shape: one object per finding,
// stable field names, paths relative to the lint root.
type jsonFinding struct {
	Rule      string `json:"rule"`
	Severity  string `json:"severity"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

func writeJSON(w io.Writer, root string, fresh, grandfathered []lint.Finding) error {
	doc := struct {
		Schema   int           `json:"schema"`
		Findings []jsonFinding `json:"findings"`
	}{Schema: 1, Findings: []jsonFinding{}}
	add := func(fs []lint.Finding, baselined bool) {
		for _, f := range fs {
			rel, err := filepath.Rel(root, f.Pos.Filename)
			if err != nil {
				rel = f.Pos.Filename
			}
			doc.Findings = append(doc.Findings, jsonFinding{
				Rule:      f.Rule,
				Severity:  f.Severity.String(),
				File:      filepath.ToSlash(rel),
				Line:      f.Pos.Line,
				Column:    f.Pos.Column,
				Message:   f.Msg,
				Baselined: baselined,
			})
		}
	}
	add(fresh, false)
	add(grandfathered, true)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// findModuleRoot walks up from the working directory to the nearest
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
