// Package sleepsync exercises the sleepsync rule.
package sleepsync

import "time"

func bad() {
	time.Sleep(10 * time.Millisecond) // want "used for synchronization"
}

func good() {
	t := time.NewTimer(10 * time.Millisecond)
	defer t.Stop()
	<-t.C
}
