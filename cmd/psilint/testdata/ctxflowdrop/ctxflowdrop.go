// Package ctxflowdrop exercises the ctxflow rule's dropped-deadline
// check: a function holding a context.Context must not bury it by
// passing context.Background()/TODO() to a context-accepting callee.
package ctxflowdrop

import "context"

// Handle is a deadline-carrying entry point.
func Handle(ctx context.Context) {
	lookup(context.Background()) // want "drops the deadline carried by parameter"
	lookup(context.TODO())       // want "drops the deadline carried by parameter"
	lookup(ctx)                  // negative: the context flows through
}

// fresh has no ctx in scope, so minting a root context is legitimate.
func fresh() {
	lookup(context.Background())
}

func lookup(ctx context.Context) { _ = ctx }

var _ = fresh
