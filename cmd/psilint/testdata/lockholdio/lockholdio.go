// Package lockholdio exercises the lockhold rule's I/O arm: no calls
// into the blocking os/net/net-http surface while a mutex is held.
package lockholdio

import (
	"net/http"
	"os"
	"sync"
)

type sink struct {
	mu   sync.Mutex
	last string
}

// badFileIO does file I/O inside the critical section.
func (s *sink) badFileIO(f *os.File, line string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = line
	_, _ = f.WriteString(line) // want "call into os"
}

// badHTTP serves a response while holding the lock.
func (s *sink) badHTTP(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Error(w, s.last, http.StatusTeapot) // want "call into net/http"
}

// good snapshots under the lock and does the I/O outside it.
func (s *sink) good(f *os.File, line string) {
	s.mu.Lock()
	s.last = line
	s.mu.Unlock()
	_, _ = f.WriteString(line)
}
