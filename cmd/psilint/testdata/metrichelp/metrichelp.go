// Package metrichelp exercises the metrichelp rule: metrics
// registered through the obs Registry must carry a help string.
package metrichelp

import "repro/internal/obs"

const emptyHelp = ""

func bad(reg *obs.Registry) {
	reg.Counter("bad_total", "")                         // want "empty help string"
	reg.Gauge("bad_depth", "   ")                        // want "empty help string"
	reg.Histogram("bad_seconds", "", obs.LatencyBuckets) // want "empty help string"
	reg.Counter("bad_const_total", emptyHelp)            // want "empty help string"
}

func good(reg *obs.Registry) {
	reg.Counter("good_total", "requests served")
	reg.Gauge("good_depth", "queue depth right now")
	reg.Histogram("good_seconds", "request latency", obs.LatencyBuckets)
	// A non-constant help string cannot be judged at lint time.
	help := helpText()
	reg.Counter("good_dynamic_total", help)
}

func helpText() string { return "runtime-assembled help" }
