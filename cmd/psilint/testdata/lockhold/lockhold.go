// Package lockhold exercises the lockhold rule: no channel operation
// or WaitGroup.Wait while a sync.Mutex/RWMutex is held.
package lockhold

import "sync"

type queue struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

// badSend sends while the mutex is locked.
func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.ch <- v // want "channel send while q.mu is locked"
	q.mu.Unlock()
}

// badDeferred: a deferred Unlock holds the lock to the end of the body.
func (q *queue) badDeferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	return <-q.ch // want "channel receive while q.mu is locked"
}

// badRead: an RLock is still a lock.
func (q *queue) badRead() {
	q.rw.RLock()
	defer q.rw.RUnlock()
	q.ch <- q.n // want "channel send while q.rw is locked"
}

// badWait joins under the lock.
func (q *queue) badWait(wg *sync.WaitGroup) {
	q.mu.Lock()
	defer q.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while q.mu is locked"
}

// good keeps the channel ops outside the critical section.
func (q *queue) good(v int) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- v
}

// goodLit: a function literal is its own scope — the lock held while
// the literal is *created* is not held when the literal later runs.
func (q *queue) goodLit() func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	return func() {
		q.ch <- q.n
	}
}
