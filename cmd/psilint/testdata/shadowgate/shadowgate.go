// Package shadowgate exercises the shadowgate rule: shadow-scoring
// entry points must be reached only through a *Sampled sampling
// predicate, so audit overhead stays opt-in.
package shadowgate

type engine struct{ rate float64 }

func (e *engine) shadowSampled(rate float64) bool { return rate > 0 }

func modeSampled() bool { return false }

func (e *engine) shadowModeRun(u int) {}

func (e *engine) shadowPlanRun(u int) {}

func shadowEvaluate(u int) bool { return u > 0 }

// auditGood gates every shadow call on a sampling predicate.
func auditGood(e *engine, u int) {
	if e.shadowSampled(e.rate) {
		e.shadowModeRun(u)
	}
	if modeSampled() {
		_ = shadowEvaluate(u)
		e.shadowPlanRun(u) // several calls under one gate are fine
	}
}

// auditBad reaches shadow entry points without any sampling gate.
func auditBad(e *engine, u int) {
	e.shadowModeRun(u) // want "Sampled condition"
	if u > 0 {
		e.shadowPlanRun(u) // want "Sampled condition"
	}
	if e.shadowSampled(e.rate) {
		e.shadowModeRun(u)
	} else {
		_ = shadowEvaluate(u) // want "Sampled condition"
	}
}

// shadowInternals is part of the subsystem (shadow-named): internal
// fan-out after the entry gate is exempt.
func (e *engine) shadowInternals(u int) {
	e.shadowModeRun(u)
	e.shadowPlanRun(u)
	_ = shadowEvaluate(u)
}

// newShadowThing contains "Shadow": construction helpers are exempt.
func newShadowThing(e *engine) func(int) {
	_ = shadowEvaluate(1)
	return e.shadowModeRun
}
