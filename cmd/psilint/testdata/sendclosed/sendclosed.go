// Package sendclosed exercises the sendclosed rule: no send on a
// channel that another function closes without a happens-before join.
package sendclosed

import "sync"

type pipe struct {
	out chan int
	bad chan int
	wg  sync.WaitGroup
}

// closeJoined closes out only after joining the producers, so the
// sends in produce are ordered before the close.
func (p *pipe) closeJoined() {
	p.wg.Wait()
	close(p.out)
}

// produce is safe: the only close of out is join-guarded.
func (p *pipe) produce(v int) {
	p.out <- v
}

// closeUnjoined closes bad with no join at all.
func (p *pipe) closeUnjoined() {
	close(p.bad)
}

// produceRacy races closeUnjoined.
func (p *pipe) produceRacy(v int) {
	p.bad <- v // want "closes without a preceding join"
}

// sendAfterClose: sequential send after close in one body always
// panics.
func sendAfterClose() {
	ch := make(chan int, 2)
	ch <- 1 // ordered before the close: fine
	close(ch)
	ch <- 2 // want "after close"
}

var (
	_ = (*pipe).closeJoined
	_ = (*pipe).produce
	_ = (*pipe).closeUnjoined
	_ = (*pipe).produceRacy
	_ = sendAfterClose
)
