// Package atomicmix exercises the atomicmix rule: a struct field
// accessed through sync/atomic anywhere must be accessed atomically
// everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	plain  int64
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

// badRead tears the atomicity contract with a plain load.
func (c *counters) badRead() int64 {
	return c.hits // want "plain access to field counters.hits"
}

// badWrite tears it with a plain store.
func (c *counters) badWrite() {
	c.misses = 0 // want "plain access to field counters.misses"
}

// goodRead keeps every access atomic.
func (c *counters) goodRead() int64 {
	return atomic.LoadInt64(&c.misses)
}

// goodPlain never touches sync/atomic, so plain access is fine.
func (c *counters) goodPlain() int64 {
	c.plain++
	return c.plain
}

// newCounters: composite-literal initialization is exempt — the value
// is not shared yet.
func newCounters() *counters {
	return &counters{hits: 0, misses: 0}
}

var (
	_ = (*counters).inc
	_ = (*counters).badRead
	_ = (*counters).badWrite
	_ = (*counters).goodRead
	_ = (*counters).goodPlain
	_ = newCounters
)
