// Package obscounter exercises the obscounter rule: package-level
// metric state must go through internal/obs, not hand-rolled atomics.
package obscounter

import "sync/atomic"

var hits int64

var evals atomic.Int64

type counters struct {
	misses atomic.Int64
}

var global counters

func bad() {
	atomic.AddInt64(&hits, 1) // want "register a Counter in internal/obs"
	evals.Add(1)              // want "register a Counter in internal/obs"
	global.misses.Add(3)      // want "register a Counter in internal/obs"
}

func good() int64 {
	// Function-local atomics are coordination state, not metrics.
	var local int64
	atomic.AddInt64(&local, 1)
	var n atomic.Int64
	n.Add(2)
	// Non-Add atomic operations on package state stay legal (gates,
	// one-shot flags, ...).
	var ready atomic.Bool
	ready.Store(true)
	return local + n.Load()
}
