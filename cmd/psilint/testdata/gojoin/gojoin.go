// Package gojoin exercises the gojoin rule: positive cases are marked
// with `// want`, everything else must stay clean.
package gojoin

import (
	"context"
	"sync"
)

func leak() {
	go func() {}() // want "without a visible join"
}

func waitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

func channelJoin() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func rangeJoin() int {
	out := make(chan int, 3)
	go func() {
		for i := 0; i < 3; i++ {
			out <- i
		}
		close(out)
	}()
	sum := 0
	for v := range out {
		sum += v
	}
	return sum
}

func contextScoped(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
