// Package ignorederr exercises the ignorederr rule (the fixture loads
// under an import path containing /internal/, so the rule applies).
package ignorederr

import (
	"fmt"
	"os"
	"strings"
)

func bad(f *os.File) {
	f.Close() // want "discards its error"
}

func good(f *os.File) error {
	return f.Close()
}

func exempt() string {
	fmt.Println("stdout is conventional to discard")
	fmt.Fprintln(os.Stderr, "so is stderr")
	var sb strings.Builder
	fmt.Fprintf(&sb, "never-fail writer %d", 1)
	sb.WriteString("never fails")
	return sb.String()
}
