// Package nopanic exercises the nopanic rule.
package nopanic

import "errors"

func bad(ok bool) {
	if !ok {
		panic("broken invariant") // want "panic in library code"
	}
}

// MustParse follows the Must* convention and may panic.
func MustParse(s string) string {
	if s == "" {
		panic("empty input")
	}
	return s
}

func good(ok bool) error {
	if !ok {
		return errors.New("broken invariant")
	}
	return nil
}
