// Package ctxflowreach exercises the ctxflow rule's reachability
// check: every potentially unbounded blocking operation reachable from
// a deadline-carrying exported entry point must sit in a function that
// itself accepts a context, budget, or deadline.
package ctxflowreach

import (
	"context"
	"time"
)

// Serve is a deadline-carrying exported entry point.
func Serve(ctx context.Context, work chan int, t *time.Timer) {
	gather(work)             // reaches a blocking helper with no deadline
	gatherBounded(ctx, work) // negative: the helper accepts the ctx
	pollTimer(work, t)       // negative: the helper's select is timer-bounded
}

// gather blocks on a receive but accepts no context/budget/deadline:
// the entry point's bound cannot stop it.
func gather(work chan int) {
	<-work // want "reachable from deadline-carrying entry point Serve"
}

// gatherBounded blocks, but carries the caller's context.
func gatherBounded(ctx context.Context, work chan int) {
	select {
	case <-work:
	case <-ctx.Done():
	}
}

// pollTimer has no deadline parameter, but its select cannot block
// forever: the timer case bounds it.
func pollTimer(work chan int, t *time.Timer) {
	select {
	case <-work:
	case <-t.C:
	}
}

// orphan blocks but is not reachable from any entry point.
func orphan(work chan int) {
	<-work
}

var _ = orphan
