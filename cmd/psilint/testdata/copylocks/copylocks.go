// Package copylocks exercises the copylocks rule.
package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

var sink int

func byValue(g guarded) int { // want "by value; use a pointer"
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func assignCopy() {
	var a guarded
	b := a // want "assignment copies"
	sink = b.n
}

func rangeCopy(xs []guarded) {
	for _, x := range xs { // want "range clause copies"
		sink = x.n
	}
}

func pointerUses(xs []*guarded) {
	for _, x := range xs {
		p := x
		sink = p.n
	}
}
