// Package suppress exercises //lint:ignore directive handling: a
// valid suppression silences its finding, a reason is mandatory,
// unknown rule names are caught, and stale directives are flagged.
package suppress

import "time"

// waitA: properly suppressed — no sleepsync finding, no hygiene
// finding.
func waitA() {
	//lint:ignore sleepsync fixture exercising a valid suppression
	time.Sleep(time.Millisecond)
}

// waitB: the directive suppresses, but carries no reason — that is an
// error on the directive itself.
func waitB() {
	// want+1 "has no reason"
	//lint:ignore sleepsync
	time.Sleep(time.Millisecond)
}

// waitC: the directive names a rule that does not exist.
func waitC() {
	// want+1 "unknown rule"
	//lint:ignore nosuchrule typo'd rule names must be caught, not silently ignored
	time.Sleep(time.Millisecond) // want "time.Sleep used for synchronization"
}

// waitD: nothing below the directive violates sleepsync, so the
// directive is stale.
func waitD() {
	// want+1 "suppressed nothing"
	//lint:ignore sleepsync stale directive kept to prove staleness is flagged
	_ = time.Millisecond
}

var (
	_ = waitA
	_ = waitB
	_ = waitC
	_ = waitD
)
