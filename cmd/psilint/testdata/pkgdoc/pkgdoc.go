package pkgdoc // want "package doc comment"

// value exists only to give the file a body; the violation this
// fixture pins is the missing package comment above the clause.
func value() int { return 1 }
