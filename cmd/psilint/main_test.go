package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches the expectation comments in the fixture sources:
// a line ending in `// want "substring"` must produce exactly one
// finding on that line whose message contains the substring.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// TestRulesOnFixtures runs the full registry over every fixture
// package under testdata and checks the findings line-for-line against
// the `// want` annotations: each annotated line must fire, and no
// unannotated line may.
func TestRulesOnFixtures(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			// The /internal/ segment puts the fixtures in scope for the
			// path-scoped rules (ignorederr).
			pkg, err := loader.LoadDir("fixture/internal/"+name, dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := lint.Run(loader.Fset, []*lint.Package{pkg}, lint.Registry)

			wants, err := collectWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want annotations", name)
			}
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				substr, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				if !strings.Contains(f.Msg, substr) {
					t.Errorf("finding at %s: message %q does not contain %q", key, f.Msg, substr)
				}
				delete(wants, key)
			}
			for key, substr := range wants {
				t.Errorf("missing finding at %s (want message containing %q)", key, substr)
			}
		})
	}
}

// collectWants maps "file.go:line" to the expected message substring
// for every `// want` annotation under dir.
func collectWants(dir string) (map[string]string, error) {
	wants := make(map[string]string)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[fmt.Sprintf("%s:%d", ent.Name(), i+1)] = m[1]
			}
		}
	}
	return wants, nil
}

// TestRegistryWellFormed checks every registered rule is complete and
// uniquely named, so -rules output and findings stay unambiguous.
func TestRegistryWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range lint.Registry {
		if r.Name == "" || r.Doc == "" || r.Run == nil {
			t.Errorf("incomplete rule: %+v", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if len(lint.Registry) < 5 {
		t.Errorf("registry has %d rules, want at least 5", len(lint.Registry))
	}
}

// TestRepoIsClean lints the repository itself and requires zero
// findings — the conventions psilint enforces must hold here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow; skipped with -short")
	}
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing directories", len(pkgs))
	}
	for _, f := range lint.Run(loader.Fset, pkgs, lint.Registry) {
		t.Errorf("%s", f)
	}
}
