package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches the expectation comments in the fixture sources:
// a line ending in `// want "substring"` must produce exactly one
// finding on that line whose message contains the substring. The
// `// want+N "substring"` form expects the finding N lines below the
// annotation — needed when the flagged line is itself a directive
// that would swallow a trailing comment into its reason text.
var wantRe = regexp.MustCompile(`// want(\+\d+)? "([^"]*)"`)

// TestRulesOnFixtures runs the full registry over every fixture
// package under testdata and checks the findings line-for-line against
// the `// want` annotations: each annotated line must fire, and no
// unannotated line may.
func TestRulesOnFixtures(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			// The /internal/ segment puts the fixtures in scope for the
			// path-scoped rules (ignorederr).
			pkg, err := loader.LoadDir("fixture/internal/"+name, dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := lint.Run(loader.Fset, []*lint.Package{pkg}, lint.Registry)

			wants, err := collectWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want annotations", name)
			}
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				substr, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				if !strings.Contains(f.Msg, substr) {
					t.Errorf("finding at %s: message %q does not contain %q", key, f.Msg, substr)
				}
				delete(wants, key)
			}
			for key, substr := range wants {
				t.Errorf("missing finding at %s (want message containing %q)", key, substr)
			}
		})
	}
}

// collectWants maps "file.go:line" to the expected message substring
// for every `// want` annotation under dir, applying any +N offset.
func collectWants(dir string) (map[string]string, error) {
	wants := make(map[string]string)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, err = strconv.Atoi(m[1][1:])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want offset %q", ent.Name(), i+1, m[1])
				}
			}
			wants[fmt.Sprintf("%s:%d", ent.Name(), i+1+offset)] = m[2]
		}
	}
	return wants, nil
}

// TestRegistryWellFormed checks every registered rule is complete and
// uniquely named, so -rules output and findings stay unambiguous.
func TestRegistryWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range lint.Registry {
		if r.Name == "" || r.Doc == "" {
			t.Errorf("rule missing name or doc: %+v", r)
		}
		// Exactly one evaluation hook: per-package or whole-program.
		if (r.Run == nil) == (r.RunProgram == nil) {
			t.Errorf("rule %q must set exactly one of Run/RunProgram", r.Name)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if len(lint.Registry) < 12 {
		t.Errorf("registry has %d rules, want at least 12", len(lint.Registry))
	}
}

// TestRepoIsClean lints the repository itself and requires zero
// findings — the conventions psilint enforces must hold here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is slow; skipped with -short")
	}
	loader, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing directories", len(pkgs))
	}
	for _, f := range lint.Run(loader.Fset, pkgs, lint.Registry) {
		t.Errorf("%s", f)
	}
}

// ---- CLI surface ----

// runCLI drives run() and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// writeModule lays out a throwaway module for end-to-end CLI tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module tmpfixture\n\ngo 1.22\n"
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const sleepSrc = `// Package tmpfixture is a throwaway module for CLI tests.
package tmpfixture

import "time"

func wait() {
	time.Sleep(time.Second)
}

var _ = wait
`

const cleanSrc = `// Package tmpfixture is a throwaway module for CLI tests.
package tmpfixture

func add(a, b int) int { return a + b }

var _ = add
`

func TestExitCodeUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown format", []string{"-format", "yaml"}},
		{"unknown rule", []string{"-rules", "nosuchrule"}},
		{"update without baseline", []string{"-update-baseline"}},
		{"missing root", []string{"-root", filepath.Join(t.TempDir(), "nope")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != exitUsage {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, exitUsage, stderr)
			}
			if stderr == "" {
				t.Error("usage error produced no diagnostic on stderr")
			}
		})
	}
}

func TestExitCodeNoPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{})
	code, _, stderr := runCLI(t, "-root", dir)
	if code != exitUsage {
		t.Errorf("exit = %d, want %d", code, exitUsage)
	}
	if !strings.Contains(stderr, "no Go packages") {
		t.Errorf("stderr = %q, want mention of no Go packages", stderr)
	}
}

func TestListPrintsRegistry(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != exitClean {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, r := range lint.Registry {
		if !strings.Contains(stdout, r.Name) || !strings.Contains(stdout, r.Doc) {
			t.Errorf("-list output missing rule %q with its doc", r.Name)
		}
	}
	for _, word := range []string{"syntactic", "dataflow", "error", "warn"} {
		if !strings.Contains(stdout, word) {
			t.Errorf("-list output missing %q column value", word)
		}
	}
}

func TestFindingsGateAndOrdering(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"b.go": sleepSrc,
		"a.go": strings.ReplaceAll(sleepSrc, "wait", "waitA"),
	})
	code, stdout, _ := runCLI(t, "-root", dir)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d (stdout: %s)", code, exitFindings, stdout)
	}
	// Findings must come out sorted by file, so a.go precedes b.go.
	ia, ib := strings.Index(stdout, "a.go"), strings.Index(stdout, "b.go")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("findings not sorted by file:\n%s", stdout)
	}
}

func TestRulesFilter(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": sleepSrc})
	// Filtering to an unrelated rule must turn the violation invisible.
	code, stdout, stderr := runCLI(t, "-root", dir, "-rules", "nopanic")
	if code != exitClean {
		t.Errorf("-rules nopanic exit = %d, want 0 (stdout: %s stderr: %s)", code, stdout, stderr)
	}
	code, _, _ = runCLI(t, "-root", dir, "-rules", "sleepsync")
	if code != exitFindings {
		t.Errorf("-rules sleepsync exit = %d, want %d", code, exitFindings)
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": cleanSrc})
	code, stdout, stderr := runCLI(t, "-root", dir)
	if code != exitClean {
		t.Errorf("exit = %d, want 0 (stdout: %s stderr: %s)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module produced output: %q", stdout)
	}
}

// sarifDoc is the slice of SARIF 2.1.0 the tests assert on.
type sarifDoc struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID string `json:"id"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI       string `json:"uri"`
						URIBaseID string `json:"uriBaseId"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestSARIFOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": sleepSrc})
	code, stdout, _ := runCLI(t, "-root", dir, "-format", "sarif")
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	var doc sarifDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v\n%s", err, stdout)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", doc.Version)
	}
	if !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("sarif $schema = %q, want a sarif-2.1.0 schema URI", doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("sarif runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "psilint" {
		t.Errorf("driver name = %q, want psilint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(lint.Registry) {
		t.Errorf("driver carries %d rules, registry has %d", len(run.Tool.Driver.Rules), len(lint.Registry))
	}
	if len(run.Results) == 0 {
		t.Fatal("sarif carries no results for a module with a violation")
	}
	res := run.Results[0]
	if res.RuleID != "sleepsync" {
		t.Errorf("result ruleId = %q, want sleepsync", res.RuleID)
	}
	if res.Level != "error" {
		t.Errorf("result level = %q, want error", res.Level)
	}
	if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
		t.Errorf("ruleIndex %d points at %q, want %q", res.RuleIndex, got, res.RuleID)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" {
		t.Errorf("artifact uri = %q, want module-relative a.go", loc.ArtifactLocation.URI)
	}
	if loc.ArtifactLocation.URIBaseID != "ROOT" {
		t.Errorf("uriBaseId = %q, want ROOT", loc.ArtifactLocation.URIBaseID)
	}
	if loc.Region.StartLine == 0 {
		t.Error("result region has no startLine")
	}
}

// TestBaselineDiffGate walks the whole baseline lifecycle: record a
// violation, verify it stops gating, verify a new violation still
// gates, and verify fixing the recorded one reports a stale entry.
func TestBaselineDiffGate(t *testing.T) {
	dir := writeModule(t, map[string]string{"a.go": sleepSrc})
	baseline := filepath.Join(dir, "lint_baseline.json")

	// Record the pre-existing violation.
	if code, _, stderr := runCLI(t, "-root", dir, "-baseline", baseline, "-update-baseline"); code != exitClean {
		t.Fatalf("-update-baseline exit = %d, want 0 (stderr: %s)", code, stderr)
	}

	// Grandfathered finding: visible, but not gating.
	code, stdout, _ := runCLI(t, "-root", dir, "-baseline", baseline)
	if code != exitClean {
		t.Fatalf("baselined run exit = %d, want 0\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "(baselined)") {
		t.Errorf("grandfathered finding not marked in output:\n%s", stdout)
	}

	// Seed a second violation: the gate must trip on it alone.
	second := strings.ReplaceAll(sleepSrc, "wait", "waitMore")
	if err := os.WriteFile(filepath.Join(dir, "b.go"), []byte(second), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-root", dir, "-baseline", baseline)
	if code != exitFindings {
		t.Fatalf("fresh violation exit = %d, want %d\n%s%s", code, exitFindings, stdout, stderr)
	}
	if !strings.Contains(stdout, "b.go") {
		t.Errorf("fresh finding in b.go not reported:\n%s", stdout)
	}

	// SARIF with a baseline carries only the fresh finding.
	_, sarifOut, _ := runCLI(t, "-root", dir, "-baseline", baseline, "-format", "sarif")
	var doc sarifDoc
	if err := json.Unmarshal([]byte(sarifOut), &doc); err != nil {
		t.Fatalf("sarif: %v", err)
	}
	if n := len(doc.Runs[0].Results); n != 1 {
		t.Errorf("sarif with baseline carries %d results, want only the 1 fresh", n)
	}

	// Fix both violations: the baseline entry is now stale, reported on
	// stderr, and the exit stays clean.
	for _, name := range []string{"a.go", "b.go"} {
		fixed := strings.ReplaceAll(cleanSrc, "add", "add"+strings.TrimSuffix(name, ".go"))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(fixed), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, _, stderr = runCLI(t, "-root", dir, "-baseline", baseline)
	if code != exitClean {
		t.Fatalf("after fix exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") {
		t.Errorf("stale baseline entry not reported: %q", stderr)
	}
}
