// Command fsm-mine runs the frequent-subgraph miner (the paper's
// Section 5.5 application) over an LG file or a built-in synthetic
// dataset, with either traditional subgraph-isomorphism support counting
// or the PSI-based replacement.
//
// Usage:
//
//	fsm-mine -dataset cora -support 300 -maxedges 2 -mode psi -workers 4
//	fsm-mine -graph g.lg  -support 50  -maxedges 3 -mode iso
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	repro "repro"
	"repro/internal/graph"
)

func main() {
	graphPath := flag.String("graph", "", "data graph file (LG format)")
	dataset := flag.String("dataset", "", "built-in dataset name (alternative to -graph)")
	support := flag.Int("support", 100, "MNI support threshold")
	maxEdges := flag.Int("maxedges", 3, "maximum pattern size in edges")
	workers := flag.Int("workers", 4, "parallel evaluation workers")
	mode := flag.String("mode", "psi", "support evaluation: psi or iso")
	budget := flag.Duration("budget", 0, "mining time budget (0: none)")
	flag.Parse()

	if err := run(*graphPath, *dataset, *support, *maxEdges, *workers, *mode, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "fsm-mine:", err)
		os.Exit(1)
	}
}

func run(graphPath, dataset string, support, maxEdges, workers int, mode string, budget time.Duration) error {
	var g *graph.Graph
	var err error
	switch {
	case graphPath != "":
		g, err = repro.LoadGraph(graphPath)
	case dataset != "":
		g, err = repro.GenerateDataset(dataset)
	default:
		return fmt.Errorf("need -graph or -dataset")
	}
	if err != nil {
		return err
	}
	cfg := repro.MineConfig{
		Support:  support,
		MaxEdges: maxEdges,
		Workers:  workers,
		Deadline: repro.Deadline(budget),
	}
	start := time.Now()
	var res *repro.MineResult
	switch mode {
	case "psi":
		res, err = repro.MinePSI(g, cfg)
	case "iso":
		res, err = repro.MineIso(g, cfg)
	default:
		return fmt.Errorf("unknown mode %q (want psi or iso)", mode)
	}
	if err != nil {
		return err
	}
	for _, p := range res.Frequent {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "mode=%s frequent=%d evaluated=%d pruned=%d elapsed=%v\n",
		mode, len(res.Frequent), res.Evaluated, res.Pruned, time.Since(start))
	return nil
}
