package main

import (
	"os"
	"path/filepath"
	"testing"
)

const miniGraph = `t # 0
v 0 A
v 1 B
v 2 A
v 3 B
v 4 A
v 5 B
e 0 1
e 2 3
e 4 5
e 1 2
e 3 4
`

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.lg")
	if err := os.WriteFile(gp, []byte(miniGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"psi", "iso"} {
		if err := run(gp, "", 2, 2, 2, mode, 0); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	if err := run(gp, "", 2, 2, 2, "bogus", 0); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run("", "", 2, 2, 2, "psi", 0); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run(filepath.Join(dir, "none.lg"), "", 2, 2, 2, "psi", 0); err == nil {
		t.Error("missing file accepted")
	}
}
