package main

import (
	"path/filepath"
	"testing"

	repro "repro"
)

func TestRunStatsAndOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "yeast.lg")
	if err := run("yeast", 4, out, true, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := repro.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3112/4 {
		t.Errorf("scaled yeast nodes = %d, want %d", g.NumNodes(), 3112/4)
	}
}

func TestRunAllStats(t *testing.T) {
	// -stats with no dataset iterates the registry; heavy datasets are
	// exercised at a small scale via the build helper directly instead.
	if err := run("cora", 1, "", true, false); err != nil {
		t.Fatal(err)
	}
	if err := run("", 1, "", false, false); err == nil {
		t.Error("missing dataset without -stats accepted")
	}
	if err := run("bogus", 1, "", true, false); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestBuildScales(t *testing.T) {
	g, err := build("yeast", 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3112/8 {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), 3112/8)
	}
	if _, err := build("nope", 1, false); err == nil {
		t.Error("unknown dataset accepted")
	}
}
