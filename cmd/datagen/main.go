// Command datagen materializes the synthetic Table 3 datasets as LG
// files and prints their structural statistics.
//
// Usage:
//
//	datagen -dataset yeast [-scale N] [-out yeast.lg] [-stats] [-full]
//	datagen -stats              # stats for every dataset at default scale
package main

import (
	"flag"
	"fmt"
	"os"

	repro "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "dataset name (empty with -stats: all)")
	scale := flag.Int("scale", 1, "extra scale divisor on top of the default")
	out := flag.String("out", "", "output LG file (empty: don't write)")
	stats := flag.Bool("stats", false, "print structural statistics")
	full := flag.Bool("full", false, "generate at full published size (web-scale graphs are large)")
	flag.Parse()

	if err := run(*dataset, *scale, *out, *stats, *full); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale int, out string, stats, full bool) error {
	names := []string{dataset}
	if dataset == "" {
		if !stats {
			return fmt.Errorf("need -dataset or -stats")
		}
		names = gen.Names()
	}
	for _, name := range names {
		g, err := build(name, scale, full)
		if err != nil {
			return err
		}
		if stats {
			s := graph.ComputeStats(g, false)
			pn, pe, pl, err := gen.PublishedStats(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-8s %s (published: nodes=%d edges=%d labels=%d)\n", name, s, pn, pe, pl)
		}
		if out != "" {
			if err := repro.SaveGraph(out, g); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d nodes, %d edges)\n", out, g.NumNodes(), g.NumEdges())
		}
	}
	return nil
}

func build(name string, scale int, full bool) (*graph.Graph, error) {
	var spec gen.Spec
	var err error
	if full {
		spec, err = gen.FullSpec(name)
	} else {
		spec, err = gen.DefaultSpec(name)
	}
	if err != nil {
		return nil, err
	}
	if scale > 1 {
		def, err := gen.FullSpec(name)
		if err != nil {
			return nil, err
		}
		base := 1
		if spec.Nodes > 0 {
			base = def.Nodes / spec.Nodes
			if base < 1 {
				base = 1
			}
		}
		spec, err = gen.ScaledSpec(name, base*scale)
		if err != nil {
			return nil, err
		}
	}
	return gen.Generate(spec)
}
