// Command psi-query evaluates one pivoted-subgraph-isomorphism query
// against a data graph with the SmartPSI engine.
//
// Usage:
//
//	psi-query -graph data.lg -query query.lg [-threads N] [-seed S] [-stats] [-explain]
//
// Both files use the LG text format ("v <id> <label>", "e <src> <dst>
// [<label>]"); the query file may add a "p <id>" line to set the pivot
// (default node 0). The distinct pivot bindings are printed one per
// line; -stats adds training/caching/preemption telemetry; -explain
// prints the query's execution profile (EXPLAIN ANALYZE tree: method
// decision, recovery-ladder timeline, per-depth candidate funnel) to
// stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	repro "repro"
	"repro/internal/obs"
)

func main() {
	graphPath := flag.String("graph", "", "data graph file (LG format)")
	queryPath := flag.String("query", "", "query file (LG format + optional 'p <id>')")
	threads := flag.Int("threads", 1, "candidate evaluation workers")
	seed := flag.Int64("seed", 1, "sampling seed")
	stats := flag.Bool("stats", false, "print evaluation telemetry")
	explain := flag.Bool("explain", false, "print the execution profile (EXPLAIN ANALYZE tree) to stderr")
	debugAddr := flag.String("debug-addr", "", "serve obs debug HTTP (metrics, traces, pprof) on this address")
	flag.Parse()

	if *graphPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		addr, closeFn, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psi-query:", err)
			os.Exit(1)
		}
		defer func() {
			if err := closeFn(); err != nil {
				fmt.Fprintln(os.Stderr, "psi-query: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics /tracez /profilez /debug/pprof)\n", addr)
	}
	if err := run(*graphPath, *queryPath, *threads, *seed, *stats, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "psi-query:", err)
		os.Exit(1)
	}
}

func run(graphPath, queryPath string, threads int, seed int64, stats, explain bool) error {
	if explain {
		obs.Enable(true) // profiles only exist with collection on
	}
	g, err := repro.LoadGraph(graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	qf, err := os.Open(queryPath)
	if err != nil {
		return fmt.Errorf("loading query: %w", err)
	}
	q, err := repro.ParseQuery(qf)
	if cerr := qf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("parsing query: %w", err)
	}
	engine, err := repro.NewEngine(g, repro.Options{Threads: threads, Seed: seed})
	if err != nil {
		return err
	}
	res, err := engine.Evaluate(q)
	if err != nil {
		return err
	}
	for _, u := range res.Bindings {
		fmt.Println(u)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "candidates=%d bindings=%d trained=%d planClasses=%d\n",
			res.Candidates, len(res.Bindings), res.TrainedNodes, res.PlanClasses)
		fmt.Fprintf(os.Stderr, "train=%v model=%v eval=%v total=%v\n",
			res.TrainTime, res.ModelTime, res.EvalTime, res.TotalTime)
		fmt.Fprintf(os.Stderr, "cacheHits=%d cacheMisses=%d flips=%d fallbacks=%d alphaAcc=%.1f%%\n",
			res.CacheHits, res.CacheMisses, res.Flips, res.Fallbacks, 100*res.Alpha.Accuracy())
		fmt.Fprintf(os.Stderr, "recursions=%d sigPrunes=%d capHits=%d deadlineAborts=%d\n",
			res.Work.Recursions, res.Work.SigPrunes, res.Work.CapHits, res.Work.Deadlines)
	}
	if explain {
		if err := res.Profile.Snapshot().WriteText(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}
