package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const testGraph = `t # 0
v 0 A
v 1 B
v 2 C
v 3 C
v 4 B
v 5 A
e 0 1
e 0 2
e 0 3
e 0 4
e 1 2
e 1 3
e 4 2
e 4 3
e 5 4
e 5 2
`

const testQuery = `t # 0
v 0 A
v 1 B
v 2 C
e 0 1
e 1 2
e 0 2
p 0
`

func TestRun(t *testing.T) {
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.lg")
	qp := filepath.Join(dir, "q.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qp, []byte(testQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(gp, qp, 1, 1, true, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Missing files error cleanly.
	if err := run(filepath.Join(dir, "missing.lg"), qp, 1, 1, false, false); err == nil {
		t.Error("missing graph accepted")
	}
	if err := run(gp, filepath.Join(dir, "missing.lg"), 1, 1, false, false); err == nil {
		t.Error("missing query accepted")
	}
	// Malformed query errors cleanly.
	bad := filepath.Join(dir, "bad.lg")
	if err := os.WriteFile(bad, []byte("v x y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(gp, bad, 1, 1, false, false); err == nil {
		t.Error("malformed query accepted")
	}
}

// TestObsRunExplain pins the -explain path: the profile tree goes to
// stderr and carries a monotone candidate funnel for the query.
func TestObsRunExplain(t *testing.T) {
	prev := obs.Enabled()
	defer obs.Enable(prev)

	dir := t.TempDir()
	gp := filepath.Join(dir, "g.lg")
	qp := filepath.Join(dir, "q.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qp, []byte(testQuery), 0o644); err != nil {
		t.Fatal(err)
	}

	// run writes the tree to os.Stderr; capture it through a pipe.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	runErr := run(gp, qp, 1, 1, false, true)
	os.Stderr = oldStderr
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(-explain): %v", runErr)
	}
	out := string(data)
	for _, want := range []string{"decision", "candidate funnel", "generated"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}
