package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testGraph = `t # 0
v 0 A
v 1 B
v 2 C
v 3 C
v 4 B
v 5 A
e 0 1
e 0 2
e 0 3
e 0 4
e 1 2
e 1 3
e 4 2
e 4 3
e 5 4
e 5 2
`

const testQuery = `t # 0
v 0 A
v 1 B
v 2 C
e 0 1
e 1 2
e 0 2
p 0
`

func TestRun(t *testing.T) {
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.lg")
	qp := filepath.Join(dir, "q.lg")
	if err := os.WriteFile(gp, []byte(testGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qp, []byte(testQuery), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(gp, qp, 1, 1, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Missing files error cleanly.
	if err := run(filepath.Join(dir, "missing.lg"), qp, 1, 1, false); err == nil {
		t.Error("missing graph accepted")
	}
	if err := run(gp, filepath.Join(dir, "missing.lg"), 1, 1, false); err == nil {
		t.Error("missing query accepted")
	}
	// Malformed query errors cleanly.
	bad := filepath.Join(dir, "bad.lg")
	if err := os.WriteFile(bad, []byte("v x y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(gp, bad, 1, 1, false); err == nil {
		t.Error("malformed query accepted")
	}
}
