// Command psi-decisions replays a JSONL decision log captured by the
// SmartPSI engine (psi-workload -decision-log, or any
// obs.DecisionLog) into model-quality reports: the model-α confusion
// matrix and vote-margin calibration, model-β plan ranks, prediction-
// cache staleness, and shadow-scoring regret — the same quantities
// /modelz serves live, recomputed offline from the raw records.
//
// Usage:
//
//	psi-decisions decisions.jsonl
//	psi-decisions -json decisions.jsonl
//	psi-decisions -refit -seed 7 decisions.jsonl
//
// With -refit the logged signature rows and ground-truth labels are
// used to re-fit a Random-Forest node-type classifier offline and score
// it on a holdout split — a quick check of how much headroom the online
// per-query model leaves on the table.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	refit := flag.Bool("refit", false, "re-fit a forest on the logged features and score it on a holdout split")
	seed := flag.Int64("seed", 42, "refit split/training seed")
	trees := flag.Int("trees", 0, "refit forest size (0: library default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psi-decisions [-json] [-refit] <decisions.jsonl>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *jsonOut, *refit, *seed, *trees, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psi-decisions:", err)
		os.Exit(1)
	}
}

func run(path string, jsonOut, refit bool, seed int64, trees int, w io.Writer) error {
	recs, err := obs.ReadDecisionLogFile(path)
	if err != nil {
		return err
	}
	rep := analyze(recs)
	if refit {
		r, err := refitAlpha(recs, seed, trees)
		if err != nil {
			return err
		}
		rep.Refit = r
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.writeText(w)
}

// report is the analyzer's output: the offline mirror of /modelz,
// recomputed from the raw decision records.
type report struct {
	Records int            `json:"records"`
	Kinds   map[string]int `json:"kinds"`

	// Alpha is the model-α confusion matrix over mode-audit records:
	// [actual][predicted] with 1 = valid.
	Alpha       [2][2]int64                                      `json:"alpha_confusion"`
	Calibration [obs.NumCalibrationBuckets]obs.CalibrationBucket `json:"calibration"`

	// BetaRanks[r-1] counts beta records whose predicted plan ranked r.
	BetaRanks []int64 `json:"beta_ranks,omitempty"`

	CacheChecks int64 `json:"cache_checks"`
	CacheStale  int64 `json:"cache_stale"`

	ModeRegret obs.RegretAggregate `json:"mode_regret"`
	PlanRegret obs.RegretAggregate `json:"plan_regret"`

	Refit *refitReport `json:"refit,omitempty"`
}

// refitReport scores a forest re-fit offline from the logged features.
type refitReport struct {
	TrainRows       int     `json:"train_rows"`
	TestRows        int     `json:"test_rows"`
	HoldoutAccuracy float64 `json:"holdout_accuracy"`
	OnlineAccuracy  float64 `json:"online_accuracy"`
}

// analyze folds the records into the report. Deterministic: the same
// log always produces the same report, which is what the round-trip
// tests pin.
func analyze(recs []obs.DecisionRecord) *report {
	rep := &report{Records: len(recs), Kinds: make(map[string]int)}
	observeRegret := func(a *obs.RegretAggregate, r *obs.DecisionRecord) {
		a.Runs++
		if r.ShadowTimeout {
			a.Timeouts++
		}
		a.TotalNanos += r.RegretNanos
		if r.RegretNanos > a.MaxNanos {
			a.MaxNanos = r.RegretNanos
		}
	}
	for i := range recs {
		r := &recs[i]
		rep.Kinds[r.Kind]++
		switch r.Kind {
		case obs.DecisionKindMode:
			rep.Alpha[boolIdx(r.ActualValid)][boolIdx(r.PredValid())]++
			b := obs.CalibrationBucketIndex(r.VoteMargin)
			rep.Calibration[b].N++
			if r.PredValid() == r.ActualValid {
				rep.Calibration[b].Correct++
			}
			observeRegret(&rep.ModeRegret, r)
		case obs.DecisionKindPlan:
			observeRegret(&rep.PlanRegret, r)
		case obs.DecisionKindCache:
			rep.CacheChecks++
			if r.CacheStale {
				rep.CacheStale++
			}
		case obs.DecisionKindBeta:
			if r.Rank >= 1 {
				for len(rep.BetaRanks) < r.Rank {
					rep.BetaRanks = append(rep.BetaRanks, 0)
				}
				rep.BetaRanks[r.Rank-1]++
			}
		}
	}
	return rep
}

// alphaTotal/alphaAccuracy mirror obs.ModelStatsData's helpers.
func (rep *report) alphaTotal() int64 {
	return rep.Alpha[0][0] + rep.Alpha[0][1] + rep.Alpha[1][0] + rep.Alpha[1][1]
}

func (rep *report) alphaAccuracy() float64 {
	t := rep.alphaTotal()
	if t == 0 {
		return 1
	}
	return float64(rep.Alpha[0][0]+rep.Alpha[1][1]) / float64(t)
}

func (rep *report) betaObserved() int64 {
	var n int64
	for _, c := range rep.BetaRanks {
		n += c
	}
	return n
}

func (rep *report) betaTopK(k int) float64 {
	total := rep.betaObserved()
	if total == 0 {
		return 1
	}
	var in int64
	for i, c := range rep.BetaRanks {
		if i < k {
			in += c
		}
	}
	return float64(in) / float64(total)
}

func (rep *report) writeText(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "decision log: %d records (", rep.Records)
	for i, k := range []string{obs.DecisionKindMode, obs.DecisionKindPlan, obs.DecisionKindCache, obs.DecisionKindBeta} {
		if i > 0 {
			fmt.Fprint(&buf, " ")
		}
		fmt.Fprintf(&buf, "%s:%d", k, rep.Kinds[k])
	}
	fmt.Fprintf(&buf, ")\n\n")

	fmt.Fprintf(&buf, "model α confusion matrix (%d mode audits)\n", rep.alphaTotal())
	fmt.Fprintf(&buf, "  %-16s  %12s  %12s\n", "", "pred-invalid", "pred-valid")
	fmt.Fprintf(&buf, "  %-16s  %12d  %12d\n", "actual-invalid", rep.Alpha[0][0], rep.Alpha[0][1])
	fmt.Fprintf(&buf, "  %-16s  %12d  %12d\n", "actual-valid", rep.Alpha[1][0], rep.Alpha[1][1])
	fmt.Fprintf(&buf, "  accuracy %.4f\n\n", rep.alphaAccuracy())

	fmt.Fprintf(&buf, "vote-margin calibration\n")
	for i, b := range rep.Calibration {
		lo := float64(i) / obs.NumCalibrationBuckets
		hi := float64(i+1) / obs.NumCalibrationBuckets
		acc := "-"
		if b.N > 0 {
			acc = fmt.Sprintf("%.4f", float64(b.Correct)/float64(b.N))
		}
		fmt.Fprintf(&buf, "  [%.1f,%.1f)  %8d  %10s\n", lo, hi, b.N, acc)
	}
	fmt.Fprintf(&buf, "\n")

	fmt.Fprintf(&buf, "model β plan rank: %d observed", rep.betaObserved())
	if rep.betaObserved() > 0 {
		fmt.Fprintf(&buf, ", top-1 %.3f, top-2 %.3f", rep.betaTopK(1), rep.betaTopK(2))
	}
	fmt.Fprintf(&buf, "\n")

	rate := "-"
	if rep.CacheChecks > 0 {
		rate = fmt.Sprintf("%.4f", float64(rep.CacheStale)/float64(rep.CacheChecks))
	}
	fmt.Fprintf(&buf, "cache quality: %d checks, %d stale (rate %s)\n", rep.CacheChecks, rep.CacheStale, rate)

	writeRegret := func(name string, a obs.RegretAggregate) {
		fmt.Fprintf(&buf, "%s regret: %d runs (%d censored), total %s, mean %s, max %s\n",
			name, a.Runs, a.Timeouts,
			time.Duration(a.TotalNanos).Round(time.Microsecond),
			a.Mean().Round(time.Microsecond),
			time.Duration(a.MaxNanos).Round(time.Microsecond))
	}
	writeRegret("mode", rep.ModeRegret)
	writeRegret("plan", rep.PlanRegret)

	if rep.Refit != nil {
		fmt.Fprintf(&buf, "\nrefit: %d train / %d test rows, holdout accuracy %.4f (online %.4f)\n",
			rep.Refit.TrainRows, rep.Refit.TestRows, rep.Refit.HoldoutAccuracy, rep.Refit.OnlineAccuracy)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// refitAlpha re-fits a node-type forest from the logged signature rows
// (mode and cache records carry Features + ground truth) and scores it
// on a 30% holdout.
func refitAlpha(recs []obs.DecisionRecord, seed int64, trees int) (*refitReport, error) {
	ds := ml.Dataset{NumClasses: 2}
	width := 0
	for i := range recs {
		r := &recs[i]
		if (r.Kind != obs.DecisionKindMode && r.Kind != obs.DecisionKindCache) || len(r.Features) == 0 {
			continue
		}
		if width == 0 {
			width = len(r.Features)
		}
		if len(r.Features) != width {
			continue // mixed graphs in one log: keep the first row shape
		}
		ds.X = append(ds.X, r.Features)
		ds.Y = append(ds.Y, boolIdx(r.ActualValid))
	}
	const minRows = 10
	if ds.Len() < minRows {
		return nil, fmt.Errorf("refit: only %d usable feature rows (need >= %d; was the log captured with a shadow rate > 0?)", ds.Len(), minRows)
	}
	rng := rand.New(rand.NewSource(seed))
	train, test := ds.Split(0.7, rng)
	cfg := ml.ForestConfig{Seed: seed, Trees: trees}
	forest, err := ml.TrainForest(train, cfg)
	if err != nil {
		return nil, fmt.Errorf("refit: %w", err)
	}
	cm := ml.Evaluate(forest, test)
	online := analyze(recs).alphaAccuracy()
	return &refitReport{
		TrainRows:       train.Len(),
		TestRows:        test.Len(),
		HoldoutAccuracy: cm.Accuracy(),
		OnlineAccuracy:  online,
	}, nil
}

func boolIdx(b bool) int {
	if b {
		return 1
	}
	return 0
}
