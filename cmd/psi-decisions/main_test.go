package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/obs"
)

// captureLog runs a fully-audited workload through the SmartPSI engine
// and returns the path of the decision log it wrote plus the engine's
// own shadow counters — the ground truth the offline analyzer must
// reproduce.
func captureLog(t *testing.T) (string, *repro.Result) {
	t.Helper()
	const n, m = 300, 900
	rng := rand.New(rand.NewSource(11))
	b := repro.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(repro.Label(i % 3))
	}
	for b.NumEdges() < m {
		u, v := repro.NodeID(rng.Intn(n)), repro.NodeID(rng.Intn(n))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	queries, err := repro.ExtractQueries(g, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	dlog, err := obs.CreateDecisionLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.Options{
		Seed:           5,
		MinTrainNodes:  10,
		MaxTrainNodes:  20,
		PlanSamples:    2,
		ShadowRate:     1,
		PlanShadowRate: 1,
		DecisionLog:    dlog,
	}
	engine, err := repro.NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := &repro.Result{}
	for i, q := range queries {
		res, err := engine.Evaluate(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		total.ShadowModeRuns += res.ShadowModeRuns
		total.ShadowPlanRuns += res.ShadowPlanRuns
		total.CacheChecks += res.CacheChecks
		total.CacheStale += res.CacheStale
	}
	if err := dlog.Close(); err != nil {
		t.Fatal(err)
	}
	if dlog.Dropped() != 0 {
		t.Fatalf("decision log dropped %d records", dlog.Dropped())
	}
	if total.ShadowModeRuns == 0 {
		t.Fatal("fixture produced no shadow mode runs; enlarge the workload")
	}
	return path, total
}

// TestDecisionLogRoundTrip is the schema round-trip guard: a log the
// engine wrote must parse back and fold into the exact quantities the
// engine reported — record counts matching the engine's shadow
// counters, and a confusion matrix identical to an independent fold of
// the raw records.
func TestDecisionLogRoundTrip(t *testing.T) {
	path, total := captureLog(t)

	var text bytes.Buffer
	if err := run(path, false, false, 0, 0, &text); err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := run(path, true, false, 0, 0, &jsonBuf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(jsonBuf.Bytes(), &rep); err != nil {
		t.Fatalf("-json output: %v", err)
	}

	if got := int64(rep.Kinds[obs.DecisionKindMode]); got != total.ShadowModeRuns {
		t.Errorf("mode records = %d, engine reported %d shadow mode runs", got, total.ShadowModeRuns)
	}
	if got := int64(rep.Kinds[obs.DecisionKindPlan]); got != total.ShadowPlanRuns {
		t.Errorf("plan records = %d, engine reported %d shadow plan runs", got, total.ShadowPlanRuns)
	}
	if rep.CacheChecks != total.CacheChecks || rep.CacheStale != total.CacheStale {
		t.Errorf("cache checks/stale = %d/%d, engine reported %d/%d",
			rep.CacheChecks, rep.CacheStale, total.CacheChecks, total.CacheStale)
	}
	if rep.ModeRegret.Runs != total.ShadowModeRuns {
		t.Errorf("mode regret runs = %d, want %d", rep.ModeRegret.Runs, total.ShadowModeRuns)
	}

	// Independent fold of the raw records: the analyzer's confusion
	// matrix must match cell for cell.
	f, err := obs.ReadDecisionLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [2][2]int64
	var calN int64
	for i := range f {
		r := &f[i]
		if r.Kind != obs.DecisionKindMode {
			continue
		}
		want[boolIdx(r.ActualValid)][boolIdx(r.PredValid())]++
		calN++
	}
	if rep.Alpha != want {
		t.Errorf("analyzer confusion matrix %v != independent fold %v", rep.Alpha, want)
	}
	var gotCalN int64
	for _, b := range rep.Calibration {
		gotCalN += b.N
	}
	if gotCalN != calN {
		t.Errorf("calibration buckets hold %d observations, want %d (every mode record lands in one bucket)", gotCalN, calN)
	}

	// Determinism: analyzing the same log twice is bit-identical.
	again := analyze(f)
	rep2 := analyze(f)
	if !reflect.DeepEqual(again, rep2) {
		t.Error("analyze is not deterministic over the same records")
	}

	// The text rendering carries the headline quantities.
	for _, wantSub := range []string{"confusion matrix", "vote-margin calibration", "mode regret", "plan regret", "cache quality"} {
		if !strings.Contains(text.String(), wantSub) {
			t.Errorf("text report missing %q:\n%s", wantSub, text.String())
		}
	}
}

// TestDecisionLogRefit exercises the offline -refit path on an
// engine-written log: the logged signature rows must be trainable and
// the holdout split accounted for.
func TestDecisionLogRefit(t *testing.T) {
	path, _ := captureLog(t)
	var buf bytes.Buffer
	if err := run(path, true, true, 7, 10, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Refit == nil {
		t.Fatal("-refit produced no refit report")
	}
	if rep.Refit.TrainRows == 0 || rep.Refit.TestRows == 0 {
		t.Errorf("refit split = %d/%d train/test rows, want both nonzero", rep.Refit.TrainRows, rep.Refit.TestRows)
	}
	if a := rep.Refit.HoldoutAccuracy; a < 0 || a > 1 {
		t.Errorf("holdout accuracy %v outside [0,1]", a)
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.jsonl"), false, false, 0, 0, &bytes.Buffer{}); err == nil {
		t.Error("missing log file accepted")
	}
}
